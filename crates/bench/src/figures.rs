//! The per-figure experiment runners.

use issr_core::spacc::SpAccStats;
use issr_kernels::cluster_csrmv::run_cluster_csrmv;
use issr_kernels::cluster_spgemm::{build_cluster_spgemm, run_cluster_spgemm, ClusterSpgemmPlan};
use issr_kernels::csrmm::run_csrmm;
use issr_kernels::csrmv::run_csrmv;
use issr_kernels::spgemm::{run_spgemm, run_spgemm_buffered, run_spgemm_recover};
use issr_kernels::spmspv::{run_spmspv, run_spvv_ss};
use issr_kernels::spvv::run_spvv;
use issr_kernels::system_csrmv::{run_system_csrmv, run_system_csrmv_traced};
use issr_kernels::system_spgemm::{run_system_spgemm_planned, SystemSpgemmPlan};
use issr_kernels::variant::Variant;
use issr_model::power::PowerModel;
use issr_sparse::csr::CsrMatrix;
use issr_sparse::dense::DenseMatrix;
use issr_sparse::{gen, reference, suite};
use issr_trace::ratio;

/// One series point of Fig. 4a: SpVV FPU utilization against nnz.
#[derive(Clone, Copy, Debug)]
pub struct Fig4aRow {
    /// Sparse vector nonzeros.
    pub nnz: usize,
    /// BASE utilization (identical for 16/32-bit indices).
    pub base: f64,
    /// SSR utilization.
    pub ssr: f64,
    /// ISSR, 32-bit indices, excluding the reduction.
    pub issr32: f64,
    /// ISSR, 32-bit, including the reduction (`m` suffix).
    pub issr32_m: f64,
    /// ISSR, 16-bit indices, excluding the reduction.
    pub issr16: f64,
    /// ISSR, 16-bit, including the reduction.
    pub issr16_m: f64,
}

/// Fig. 4a: single-CC SpVV FPU utilization sweep.
#[must_use]
pub fn fig4a(points: &[usize]) -> Vec<Fig4aRow> {
    let dim = 2048;
    points
        .iter()
        .map(|&nnz| {
            let mut rng = gen::rng(0x000F_164A + nnz as u64);
            let a32 = gen::sparse_vector::<u32>(&mut rng, dim, nnz);
            let a16 = a32.with_index_width::<u16>();
            let b = gen::dense_vector(&mut rng, dim);
            let base = run_spvv(Variant::Base, &a32, &b).expect("base run");
            let ssr = run_spvv(Variant::Ssr, &a32, &b).expect("ssr run");
            let i32r = run_spvv(Variant::Issr, &a32, &b).expect("issr32 run");
            let i16r = run_spvv(Variant::Issr, &a16, &b).expect("issr16 run");
            Fig4aRow {
                nnz,
                base: base.summary.metrics.fpu_utilization(),
                ssr: ssr.summary.metrics.fpu_utilization(),
                issr32: i32r.summary.metrics.fpu_utilization(),
                issr32_m: i32r.summary.metrics.fpu_utilization_with_reduction(),
                issr16: i16r.summary.metrics.fpu_utilization(),
                issr16_m: i16r.summary.metrics.fpu_utilization_with_reduction(),
            }
        })
        .collect()
}

/// One series point of Fig. 4b: single-CC CsrMV speedup over BASE.
#[derive(Clone, Copy, Debug)]
pub struct Fig4bRow {
    /// Average nonzeros per row.
    pub row_nnz: usize,
    /// SSR speedup over BASE.
    pub ssr: f64,
    /// ISSR 32-bit speedup.
    pub issr32: f64,
    /// ISSR 16-bit speedup.
    pub issr16: f64,
}

/// Fig. 4b: single-CC CsrMV speedup sweep over nnz/row.
#[must_use]
pub fn fig4b(points: &[usize]) -> Vec<Fig4bRow> {
    let (nrows, ncols) = (64, 2048);
    points
        .iter()
        .map(|&row_nnz| {
            let mut rng = gen::rng(0x000F_164B + row_nnz as u64);
            let m32 = gen::csr_fixed_row_nnz::<u32>(&mut rng, nrows, ncols, row_nnz);
            let m16 = m32.with_index_width::<u16>();
            let x = gen::dense_vector(&mut rng, ncols);
            let cycles = |v, wide: bool| -> u64 {
                if wide {
                    run_csrmv(v, &m32, &x).expect("run").summary.metrics.roi.cycles
                } else {
                    run_csrmv(v, &m16, &x).expect("run").summary.metrics.roi.cycles
                }
            };
            let base = cycles(Variant::Base, true) as f64;
            Fig4bRow {
                row_nnz,
                ssr: ratio(base, cycles(Variant::Ssr, true) as f64),
                issr32: ratio(base, cycles(Variant::Issr, true) as f64),
                issr16: ratio(base, cycles(Variant::Issr, false) as f64),
            }
        })
        .collect()
}

/// One series point of Fig. 4c: cluster CsrMV speedup (ISSR-16 / BASE).
#[derive(Clone, Copy, Debug)]
pub struct Fig4cRow {
    /// Average nonzeros per row.
    pub row_nnz: usize,
    /// BASE cluster cycles.
    pub base_cycles: u64,
    /// ISSR-16 cluster cycles.
    pub issr_cycles: u64,
    /// Speedup.
    pub speedup: f64,
    /// Peak per-worker FPU utilization (paper: 0.8 → ≈0.71).
    pub peak_util: f64,
    /// Cluster-aggregate utilization (for §V).
    pub cluster_util: f64,
}

/// Fig. 4c: cluster CsrMV sweep over nnz/row.
#[must_use]
pub fn fig4c(points: &[usize]) -> Vec<Fig4cRow> {
    let (nrows, ncols) = (512, 2048);
    points
        .iter()
        .map(|&row_nnz| {
            let mut rng = gen::rng(0x000F_164C + row_nnz as u64);
            let m = gen::csr_clustered::<u16>(
                &mut rng,
                nrows,
                ncols,
                row_nnz,
                (row_nnz * 4).clamp(16, ncols),
            );
            let x = gen::dense_vector(&mut rng, ncols);
            let base = run_cluster_csrmv(Variant::Base, &m, &x).expect("base run");
            let issr = run_cluster_csrmv(Variant::Issr, &m, &x).expect("issr run");
            Fig4cRow {
                row_nnz,
                base_cycles: base.summary.cycles,
                issr_cycles: issr.summary.cycles,
                speedup: ratio(base.summary.cycles as f64, issr.summary.cycles as f64),
                peak_util: issr.summary.peak_worker_utilization(),
                cluster_util: issr.summary.cluster_utilization(),
            }
        })
        .collect()
}

/// One row of Fig. 4d: per-matrix cluster CsrMV energy.
#[derive(Clone, Debug)]
pub struct Fig4dRow {
    /// Suite matrix name.
    pub name: String,
    /// Nonzeros.
    pub nnz: usize,
    /// BASE average power (mW) — paper anchor ≈ 89 mW.
    pub base_mw: f64,
    /// ISSR average power (mW) — paper anchor ≈ 194 mW.
    pub issr_mw: f64,
    /// BASE energy per fmadd (pJ).
    pub base_pj: f64,
    /// ISSR energy per fmadd (pJ).
    pub issr_pj: f64,
    /// Efficiency gain (paper: up to 2.7×).
    pub gain: f64,
}

/// Fig. 4d: cluster CsrMV energy over the matrix suite.
///
/// `max_nnz` caps the matrices simulated (the full suite's largest
/// entries take minutes; binaries pass a generous cap, Criterion a
/// small one).
#[must_use]
pub fn fig4d(max_nnz: usize) -> Vec<Fig4dRow> {
    let model = PowerModel::default();
    suite::suite()
        .into_iter()
        .filter(|e| e.nnz <= max_nnz)
        .map(|entry| {
            let m = entry.build::<u16>();
            let mut rng = gen::rng(0x000F_164D);
            let x = gen::dense_vector(&mut rng, m.ncols());
            let base = run_cluster_csrmv(Variant::Base, &m, &x).expect("base run");
            let issr = run_cluster_csrmv(Variant::Issr, &m, &x).expect("issr run");
            let eb = model.evaluate(&base.summary);
            let ei = model.evaluate(&issr.summary);
            Fig4dRow {
                name: entry.name.to_owned(),
                nnz: entry.nnz,
                base_mw: eb.avg_power_mw,
                issr_mw: ei.avg_power_mw,
                base_pj: eb.pj_per_fmadd,
                issr_pj: ei.pj_per_fmadd,
                gain: ratio(eb.pj_per_fmadd, ei.pj_per_fmadd),
            }
        })
        .collect()
}

/// §IV-A CsrMM spot check: utilization delta between CsrMM and CsrMV.
#[derive(Clone, Debug)]
pub struct CsrmmCheckRow {
    /// Matrix name.
    pub name: String,
    /// Dense columns.
    pub b_cols: usize,
    /// CsrMV ISSR utilization.
    pub mv_util: f64,
    /// CsrMM ISSR utilization.
    pub mm_util: f64,
    /// Absolute delta (paper: 0.12 % for Ragusa18 × 2 columns).
    pub delta: f64,
}

/// Runs the CsrMM ≈ CsrMV comparison on a suite entry.
#[must_use]
pub fn csrmm_check(name: &str, b_cols: usize) -> CsrmmCheckRow {
    let entry = suite::by_name(name).expect("suite entry");
    let m = entry.build::<u16>();
    let mut rng = gen::rng(0xC5);
    let mut b = DenseMatrix::with_pow2_stride(m.ncols(), b_cols);
    for r in 0..m.ncols() {
        for c in 0..b_cols {
            b.set(r, c, gen::dense_vector(&mut rng, 1)[0]);
        }
    }
    let x = b.col(0);
    let mv = run_csrmv(Variant::Issr, &m, &x).expect("csrmv run");
    let mm = run_csrmm(Variant::Issr, &m, &b).expect("csrmm run");
    let mv_util = mv.summary.metrics.fpu_utilization();
    let mm_util = mm.summary.metrics.fpu_utilization();
    CsrmmCheckRow {
        name: name.to_owned(),
        b_cols,
        mv_util,
        mm_util,
        delta: (mv_util - mm_util).abs(),
    }
}

/// Default sweep points for the figures (log-spaced like the paper).
#[must_use]
pub fn default_nnz_sweep() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
}

/// One point of the joiner SpVV∩ sweep: cycles for the software
/// two-pointer merge vs. the index joiner at a given match density.
#[derive(Clone, Copy, Debug)]
pub struct JoinerSpvvRow {
    /// Fraction of indices shared between the two operands.
    pub overlap: f64,
    /// BASE (software merge) ROI cycles, 16-bit indices.
    pub base16: u64,
    /// ISSR-joiner ROI cycles, 16-bit indices.
    pub issr16: u64,
    /// BASE ROI cycles, 32-bit indices.
    pub base32: u64,
    /// ISSR-joiner ROI cycles, 32-bit indices.
    pub issr32: u64,
    /// Joiner utilization: pairs emitted per ROI cycle (16-bit run).
    pub joiner_util: f64,
}

impl JoinerSpvvRow {
    /// Joiner speedup over the software merge, 16-bit indices.
    #[must_use]
    pub fn speedup16(&self) -> f64 {
        ratio(self.base16 as f64, self.issr16 as f64)
    }

    /// Joiner speedup over the software merge, 32-bit indices.
    #[must_use]
    pub fn speedup32(&self) -> f64 {
        ratio(self.base32 as f64, self.issr32 as f64)
    }
}

/// Sparse-sparse SpVV: joiner vs. software merge across match densities.
#[must_use]
pub fn joiner_spvv(overlaps: &[f64]) -> Vec<JoinerSpvvRow> {
    let (dim, nnz) = (8192, 512);
    overlaps
        .iter()
        .map(|&overlap| {
            let mut rng = gen::rng(0x000F_164E + (overlap * 100.0) as u64);
            let (a32, b32) = gen::overlapping_pair::<u32>(&mut rng, dim, nnz, nnz, overlap);
            let (a16, b16) = (a32.with_index_width::<u16>(), b32.with_index_width::<u16>());
            let base16 = run_spvv_ss(Variant::Base, &a16, &b16).expect("base16 run");
            let issr16 = run_spvv_ss(Variant::Issr, &a16, &b16).expect("issr16 run");
            let base32 = run_spvv_ss(Variant::Base, &a32, &b32).expect("base32 run");
            let issr32 = run_spvv_ss(Variant::Issr, &a32, &b32).expect("issr32 run");
            JoinerSpvvRow {
                overlap,
                base16: base16.summary.metrics.roi.cycles,
                issr16: issr16.summary.metrics.roi.cycles,
                base32: base32.summary.metrics.roi.cycles,
                issr32: issr32.summary.metrics.roi.cycles,
                joiner_util: ratio(
                    issr16.summary.joiner_stats.emissions as f64,
                    issr16.summary.metrics.roi.cycles as f64,
                ),
            }
        })
        .collect()
}

/// One point of the joiner SpMSpV sweep: cycles against the operand
/// vector's density.
#[derive(Clone, Copy, Debug)]
pub struct JoinerSpmspvRow {
    /// Nonzeros of the sparse vector operand.
    pub x_nnz: usize,
    /// BASE (software merge) ROI cycles, 16-bit indices.
    pub base16: u64,
    /// ISSR-joiner ROI cycles, 16-bit indices.
    pub issr16: u64,
    /// BASE ROI cycles, 32-bit indices.
    pub base32: u64,
    /// ISSR-joiner ROI cycles, 32-bit indices.
    pub issr32: u64,
}

impl JoinerSpmspvRow {
    /// Joiner speedup over the software merge, 16-bit indices.
    #[must_use]
    pub fn speedup16(&self) -> f64 {
        ratio(self.base16 as f64, self.issr16 as f64)
    }

    /// Joiner speedup over the software merge, 32-bit indices.
    #[must_use]
    pub fn speedup32(&self) -> f64 {
        ratio(self.base32 as f64, self.issr32 as f64)
    }
}

/// SpMSpV: joiner vs. software merge across operand-vector densities.
#[must_use]
pub fn joiner_spmspv(x_nnzs: &[usize]) -> Vec<JoinerSpmspvRow> {
    let (nrows, ncols, row_nnz) = (48, 2048, 64);
    x_nnzs
        .iter()
        .map(|&x_nnz| {
            let mut rng = gen::rng(0x000F_164F + x_nnz as u64);
            let m32 = gen::csr_fixed_row_nnz::<u32>(&mut rng, nrows, ncols, row_nnz);
            let m16 = m32.with_index_width::<u16>();
            let x32 = gen::sparse_vector::<u32>(&mut rng, ncols, x_nnz);
            let x16 = x32.with_index_width::<u16>();
            let base16 = run_spmspv(Variant::Base, &m16, &x16).expect("base16 run");
            let issr16 = run_spmspv(Variant::Issr, &m16, &x16).expect("issr16 run");
            let base32 = run_spmspv(Variant::Base, &m32, &x32).expect("base32 run");
            let issr32 = run_spmspv(Variant::Issr, &m32, &x32).expect("issr32 run");
            JoinerSpmspvRow {
                x_nnz,
                base16: base16.summary.metrics.roi.cycles,
                issr16: issr16.summary.metrics.roi.cycles,
                base32: base32.summary.metrics.roi.cycles,
                issr32: issr32.summary.metrics.roi.cycles,
            }
        })
        .collect()
}

/// The overlap sweep the joiner binary reports.
#[must_use]
pub fn default_overlap_sweep() -> Vec<f64> {
    vec![0.0, 0.125, 0.25, 0.5, 0.75, 1.0]
}

/// One sparsity regime of the SpGEMM sweep.
#[derive(Clone, Copy, Debug)]
pub struct SpgemmRegime {
    /// Display name.
    pub label: &'static str,
    /// Rows of A (= rows of C).
    pub nrows: usize,
    /// Inner dimension (columns of A, rows of B).
    pub inner: usize,
    /// Columns of B (= columns of C).
    pub ncols: usize,
    /// Nonzeros per A row.
    pub a_row_nnz: usize,
    /// Nonzeros per B row.
    pub b_row_nnz: usize,
}

/// One row of the SpGEMM sweep: BASE vs. ISSR cycles per index width,
/// the ISSR-16 run's SpAcc unit activity, and the single-buffered
/// ISSR-16 cycles (double-buffer delta).
#[derive(Clone, Copy, Debug)]
pub struct SpgemmRow {
    /// The regime swept.
    pub regime: SpgemmRegime,
    /// BASE (software merge) ROI cycles, 16-bit indices.
    pub base16: u64,
    /// ISSR (SpAcc subsystem) ROI cycles, 16-bit indices.
    pub issr16: u64,
    /// ISSR-16 ROI cycles with single-buffered SpAcc row storage (the
    /// drain blocks the next row's feeds) — the double-buffer baseline.
    pub issr16_single: u64,
    /// BASE ROI cycles, 32-bit indices.
    pub base32: u64,
    /// ISSR ROI cycles, 32-bit indices.
    pub issr32: u64,
    /// SpAcc statistics of the (double-buffered) ISSR-16 run.
    pub spacc: SpAccStats,
}

impl SpgemmRow {
    /// SpAcc-subsystem speedup over the software merge, 16-bit indices.
    #[must_use]
    pub fn speedup16(&self) -> f64 {
        ratio(self.base16 as f64, self.issr16 as f64)
    }

    /// SpAcc-subsystem speedup over the software merge, 32-bit indices.
    #[must_use]
    pub fn speedup32(&self) -> f64 {
        ratio(self.base32 as f64, self.issr32 as f64)
    }

    /// Cycles the double-buffered SpAcc saves over the single-buffered
    /// unit (drain/feed overlap), ISSR-16.
    #[must_use]
    pub fn double_buffer_gain(&self) -> u64 {
        self.issr16_single.saturating_sub(self.issr16)
    }
}

/// SpGEMM: SpAcc subsystem vs. software merge across sparsity regimes.
#[must_use]
pub fn spgemm_sweep(regimes: &[SpgemmRegime]) -> Vec<SpgemmRow> {
    regimes
        .iter()
        .map(|&regime| {
            let mut rng = gen::rng(0x000F_1650 + regime.b_row_nnz as u64);
            let a32 = gen::csr_fixed_row_nnz::<u32>(
                &mut rng,
                regime.nrows,
                regime.inner,
                regime.a_row_nnz,
            );
            let b32 = gen::csr_fixed_row_nnz::<u32>(
                &mut rng,
                regime.inner,
                regime.ncols,
                regime.b_row_nnz,
            );
            let (a16, b16) = (a32.with_index_width::<u16>(), b32.with_index_width::<u16>());
            let base16 = run_spgemm(Variant::Base, &a16, &b16).expect("base16 run");
            let issr16 = run_spgemm(Variant::Issr, &a16, &b16).expect("issr16 run");
            let issr16_single = run_spgemm_buffered(Variant::Issr, &a16, &b16, false)
                .expect("issr16 single-buffer run");
            let base32 = run_spgemm(Variant::Base, &a32, &b32).expect("base32 run");
            let issr32 = run_spgemm(Variant::Issr, &a32, &b32).expect("issr32 run");
            SpgemmRow {
                regime,
                base16: base16.summary.metrics.roi.cycles,
                issr16: issr16.summary.metrics.roi.cycles,
                issr16_single: issr16_single.summary.metrics.roi.cycles,
                base32: base32.summary.metrics.roi.cycles,
                issr32: issr32.summary.metrics.roi.cycles,
                spacc: issr16.summary.spacc_stats,
            }
        })
        .collect()
}

/// Per-worker SpAcc activity of one cluster SpGEMM run (ISSR variant)
/// on the given regime, plus the BASE/ISSR cluster cycle counts.
#[derive(Clone, Debug)]
pub struct ClusterSpgemmReport {
    /// The regime run.
    pub regime: SpgemmRegime,
    /// BASE cluster cycles.
    pub base_cycles: u64,
    /// ISSR cluster cycles.
    pub issr_cycles: u64,
    /// Per-worker SpAcc statistics of the ISSR run.
    pub spacc: Vec<SpAccStats>,
}

/// Runs cluster SpGEMM (both variants) on one regime.
#[must_use]
pub fn cluster_spgemm_report(regime: SpgemmRegime) -> ClusterSpgemmReport {
    let mut rng = gen::rng(0x000F_1651);
    let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, regime.nrows, regime.inner, regime.a_row_nnz);
    let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, regime.inner, regime.ncols, regime.b_row_nnz);
    let base = run_cluster_spgemm(Variant::Base, &a, &b).expect("base cluster run");
    let issr = run_cluster_spgemm(Variant::Issr, &a, &b).expect("issr cluster run");
    ClusterSpgemmReport {
        regime,
        base_cycles: base.summary.cycles,
        issr_cycles: issr.summary.cycles,
        spacc: issr.summary.spacc_stats,
    }
}

/// The overflow-recovery regime: SpGEMM with an *optimistic* SpAcc
/// row-buffer capacity recovered through trap-driven grow-and-retry.
#[derive(Clone, Copy, Debug)]
pub struct SpgemmRecoveryRow {
    /// The optimistic initial `ACC_BUF_CAP`.
    pub initial_cap: u32,
    /// The capacity the clean run converged to.
    pub final_cap: u32,
    /// Overflow traps taken before the capacity sufficed.
    pub retries: u32,
    /// Total cycles of the final clean run.
    pub cycles: u64,
    /// Peak row-buffer occupancy of the clean run.
    pub peak_nnz: u64,
}

/// Runs the overflow-recovery regime: dense-ish B rows against a tiny
/// initial capacity force several overflow traps, the harness grows
/// `ACC_BUF_CAP` and replays, and the converged product is validated
/// against the host oracle before reporting.
///
/// # Panics
/// Panics if the run fails, never retries (the regime must actually
/// trap), or diverges from the oracle.
#[must_use]
pub fn spgemm_recovery_report() -> SpgemmRecoveryRow {
    let initial_cap = 4u32;
    let mut rng = gen::rng(0x000F_1652);
    let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, 8, 24, 4);
    let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, 24, 64, 24);
    let rec = run_spgemm_recover(Variant::Issr, &a, &b, initial_cap).expect("recovery run");
    assert!(rec.retries >= 1, "the overflow-recovery regime must trap at least once");
    let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
    assert_eq!(rec.run.c.ptr(), expect.ptr(), "recovered product row pointers");
    assert_eq!(rec.run.c.idcs(), expect.idcs(), "recovered product column indices");
    for (got, want) in rec.run.c.vals().iter().zip(expect.vals()) {
        assert!(
            (got - want).abs() <= 1e-12 * want.abs().max(1.0),
            "recovered product values: {got} vs {want}"
        );
    }
    SpgemmRecoveryRow {
        initial_cap,
        final_cap: rec.final_cap,
        retries: rec.retries,
        cycles: rec.run.summary.cycles,
        peak_nnz: rec.run.summary.spacc_stats.peak_nnz,
    }
}

/// One row of the SuiteSparse stand-in SpGEMM energy sweep (`C = M·M`
/// on the cluster, both variants, evaluated by the power model).
#[derive(Clone, Debug)]
pub struct SpgemmSuiteRow {
    /// Suite entry name.
    pub name: String,
    /// Side length of the TCDM-resident principal window simulated.
    pub window: usize,
    /// Nonzeros of the windowed operand.
    pub nnz: usize,
    /// Nonzeros of the product.
    pub c_nnz: usize,
    /// Gustavson expansion volume (multiplies) of the window.
    pub macs: u64,
    /// BASE / ISSR cluster cycles.
    pub base_cycles: u64,
    /// ISSR cluster cycles.
    pub issr_cycles: u64,
    /// Average cluster power, BASE (mW).
    pub base_mw: f64,
    /// Average cluster power, ISSR (mW).
    pub issr_mw: f64,
    /// Energy per expansion multiply, BASE (pJ).
    pub base_pj_per_mac: f64,
    /// Energy per expansion multiply, ISSR (pJ).
    pub issr_pj_per_mac: f64,
    /// Energy-efficiency gain (BASE / ISSR pJ per multiply).
    pub gain: f64,
}

/// Gustavson expansion volume of `m · m` (the multiply count — SpGEMM's
/// useful-work denominator; the ISSR variant retires these as `fmul`,
/// not `fmadd`, so the CsrMV figure's pJ/fmadd does not apply).
fn spgemm_macs(m: &CsrMatrix<u16>) -> u64 {
    (0..m.nrows()).map(|r| m.row(r).map(|(k, _)| m.row_range(k).len() as u64).sum::<u64>()).sum()
}

/// Largest leading principal window of `m` whose cluster SpGEMM plan
/// (operands, expansion-volume output bound, per-worker merge scratch)
/// fits the TCDM — the suite stand-ins themselves are sized for
/// main-memory CsrMV, not for a TCDM-resident product.
fn tcdm_window(m: &CsrMatrix<u16>) -> CsrMatrix<u16> {
    let budget = u64::from(issr_mem::map::TCDM_SIZE) * 8 / 10;
    let ladder = [m.nrows(), 384, 256, 192, 128, 96, 64, 48, 32, 16];
    for &k in ladder.iter().filter(|&&k| k <= m.nrows()) {
        let w = principal_window(m, k);
        let nnz = w.nnz() as u64;
        let n = k as u64;
        let volume = spgemm_macs(&w);
        let cap = volume.min(n * n);
        // CSR bytes: 4-byte row pointers, 2-byte indices, 8-byte values
        // (A and B alias the same matrix but are stored twice), plus the
        // 8-worker BASE ping-pong scratch the plan always reserves.
        let bytes = 2 * ((n + 1) * 4 + nnz * 10) + (n + 1) * 4 + cap * 10 + 8 * (n * 20 + 16);
        if bytes <= budget {
            return w;
        }
    }
    principal_window(m, ladder[ladder.len() - 1].min(m.nrows()))
}

/// The leading `k`-by-`k` principal submatrix (the suite's windowed
/// accessor).
fn principal_window(m: &CsrMatrix<u16>, k: usize) -> CsrMatrix<u16> {
    suite::principal_window(m, k)
}

/// Sweeps cluster SpGEMM (`C = M·M`, BASE vs. ISSR) over TCDM-resident
/// windows of the named suite stand-ins and evaluates each run with the
/// power model — the energy tables' first sparse-output kernel.
///
/// # Panics
/// Panics if a named entry is missing or a cluster run fails.
#[must_use]
pub fn spgemm_suite_sweep(names: &[&str]) -> Vec<SpgemmSuiteRow> {
    let model = PowerModel::default();
    names
        .iter()
        .map(|&name| {
            let entry = suite::by_name(name).expect("suite entry");
            let m = tcdm_window(&entry.build::<u16>());
            let base = run_cluster_spgemm(Variant::Base, &m, &m).expect("base cluster run");
            let issr = run_cluster_spgemm(Variant::Issr, &m, &m).expect("issr cluster run");
            let eb = model.evaluate(&base.summary);
            let ei = model.evaluate(&issr.summary);
            let macs = spgemm_macs(&m).max(1);
            let base_pj = ratio(eb.total_nj * 1000.0, macs as f64);
            let issr_pj = ratio(ei.total_nj * 1000.0, macs as f64);
            SpgemmSuiteRow {
                name: name.to_owned(),
                window: m.nrows(),
                nnz: m.nnz(),
                c_nnz: issr.c.nnz(),
                macs,
                base_cycles: base.summary.cycles,
                issr_cycles: issr.summary.cycles,
                base_mw: eb.avg_power_mw,
                issr_mw: ei.avg_power_mw,
                base_pj_per_mac: base_pj,
                issr_pj_per_mac: issr_pj,
                gain: ratio(base_pj, issr_pj),
            }
        })
        .collect()
}

/// The three sparsity regimes the SpGEMM binary sweeps: hypersparse
/// (tiny expansions, fixed overheads dominate), moderate (typical
/// graph/FEM-like fill), and dense-row (long accumulations, steady-state
/// merge throughput).
#[must_use]
pub fn default_spgemm_regimes() -> Vec<SpgemmRegime> {
    vec![
        SpgemmRegime {
            label: "hypersparse",
            nrows: 32,
            inner: 64,
            ncols: 96,
            a_row_nnz: 4,
            b_row_nnz: 4,
        },
        SpgemmRegime {
            label: "moderate",
            nrows: 24,
            inner: 64,
            ncols: 256,
            a_row_nnz: 4,
            b_row_nnz: 24,
        },
        SpgemmRegime {
            label: "dense-rows",
            nrows: 16,
            inner: 64,
            ncols: 512,
            a_row_nnz: 8,
            b_row_nnz: 48,
        },
    ]
}

/// Smaller regimes for the CI smoke run (same three shapes, scaled
/// down so the sweep finishes in seconds).
#[must_use]
pub fn smoke_spgemm_regimes() -> Vec<SpgemmRegime> {
    vec![
        SpgemmRegime {
            label: "hypersparse",
            nrows: 12,
            inner: 24,
            ncols: 32,
            a_row_nnz: 2,
            b_row_nnz: 3,
        },
        SpgemmRegime {
            label: "moderate",
            nrows: 10,
            inner: 24,
            ncols: 64,
            a_row_nnz: 3,
            b_row_nnz: 10,
        },
        SpgemmRegime {
            label: "dense-rows",
            nrows: 8,
            inner: 24,
            ncols: 128,
            a_row_nnz: 4,
            b_row_nnz: 20,
        },
    ]
}

// ---------------------------------------------------------------------
// Multi-cluster scaling (`--bin system`)
// ---------------------------------------------------------------------

/// One row of the multi-cluster scaling sweeps.
#[derive(Clone, Copy, Debug)]
pub struct SystemScalingRow {
    /// Clusters in the system.
    pub n_clusters: usize,
    /// System cycles to completion.
    pub cycles: u64,
    /// Strong-scaling speedup against the sweep's first row.
    pub speedup: f64,
    /// Denied fraction of shared-interface DMA word requests.
    pub contention: f64,
    /// Total DMA engine stall cycles on denied bandwidth.
    pub dma_stalls: u64,
    /// Cycles with DMA traffic and ROI compute in flight together.
    pub overlap_cycles: u64,
    /// Average system power from the power model (mW).
    pub avg_power_mw: f64,
    /// Total energy from the power model (nJ).
    pub total_nj: f64,
    /// Energy per retired multiply-accumulate (pJ; CsrMV sweeps only —
    /// the SpGEMM expansion retires `fmul`, not `fmadd`).
    pub pj_per_fmadd: f64,
}

/// Assembles one scaling-table row from a run's summary, its power
/// evaluation, and the sweep's baseline cycle count.
fn scaling_row(
    n_clusters: usize,
    summary: &issr_system::system::SystemSummary,
    energy: issr_model::power::EnergyBreakdown,
    base_cycles: u64,
) -> SystemScalingRow {
    SystemScalingRow {
        n_clusters,
        cycles: summary.cycles,
        speedup: ratio(base_cycles as f64, summary.cycles as f64),
        contention: summary.contention_ratio(),
        dma_stalls: summary.total_dma_stalls(),
        overlap_cycles: summary.overlap_cycles,
        avg_power_mw: energy.avg_power_mw,
        total_nj: energy.total_nj,
        pj_per_fmadd: energy.pj_per_fmadd,
    }
}

/// Strong-scaling sweep of system CsrMV (ISSR) over `counts` clusters
/// on one matrix. Every run is checked **bit-identical** against the
/// single-cluster kernel ([`run_cluster_csrmv`]) — the correctness gate
/// of the scale-out path.
///
/// # Panics
/// Panics if a run fails, traps, or diverges from the single-cluster
/// result by a single bit.
#[must_use]
pub fn system_csrmv_scaling(
    m: &CsrMatrix<u16>,
    x: &[f64],
    counts: &[usize],
) -> Vec<SystemScalingRow> {
    let single = run_cluster_csrmv(Variant::Issr, m, x).expect("single-cluster run");
    let reference: Vec<u64> = single.y.iter().map(|v| v.to_bits()).collect();
    let model = PowerModel::default();
    let mut rows: Vec<SystemScalingRow> = Vec::new();
    for &n in counts {
        let run = run_system_csrmv(Variant::Issr, m, x, n).expect("system run");
        let got: Vec<u64> = run.y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, reference, "{n}-cluster CsrMV must be bit-identical");
        let energy = model.evaluate_system(&run.summary);
        let base = rows.first().map_or(run.summary.cycles, |r| r.cycles);
        rows.push(scaling_row(n, &run.summary, energy, base));
    }
    rows
}

/// Strong-scaling sweep of system SpGEMM (ISSR) over `counts` clusters.
/// Row pointers and indices are checked exactly against the host
/// oracle, and values **bit-identical across cluster counts**; panel
/// capacities can be clamped to force multi-panel runs on small inputs.
///
/// # Panics
/// Panics if a run fails, traps, or results diverge.
#[must_use]
pub fn system_spgemm_scaling(
    a: &CsrMatrix<u16>,
    b: &CsrMatrix<u16>,
    counts: &[usize],
    panel_caps: Option<(u32, u32)>,
) -> Vec<SystemScalingRow> {
    use issr_system::system::SystemParams;
    let expect = reference::spgemm(a, b).with_index_width::<u32>();
    let model = PowerModel::default();
    let n_workers = SystemParams::default().cluster.n_workers as u32;
    let mut rows: Vec<SystemScalingRow> = Vec::new();
    let mut reference_bits: Option<Vec<u64>> = None;
    for &n in counts {
        let plan = match panel_caps {
            Some((a_cap, c_cap)) => {
                SystemSpgemmPlan::with_panel_caps(Variant::Issr, a, b, n_workers, a_cap, c_cap)
            }
            None => SystemSpgemmPlan::new(Variant::Issr, a, b, n_workers),
        };
        let run = run_system_spgemm_planned(
            Variant::Issr,
            a,
            b,
            plan,
            SystemParams { n_clusters: n, ..SystemParams::default() },
        )
        .expect("system run");
        assert_eq!(run.c.ptr(), expect.ptr(), "{n}-cluster SpGEMM row pointers");
        assert_eq!(run.c.idcs(), expect.idcs(), "{n}-cluster SpGEMM indices");
        let bits: Vec<u64> = run.c.vals().iter().map(|v| v.to_bits()).collect();
        match &reference_bits {
            Some(r) => assert_eq!(&bits, r, "{n}-cluster SpGEMM values must be bit-identical"),
            None => reference_bits = Some(bits),
        }
        let energy = model.evaluate_system(&run.summary);
        let base = rows.first().map_or(run.summary.cycles, |r| r.cycles);
        rows.push(scaling_row(n, &run.summary, energy, base));
    }
    rows
}

/// Weak-scaling sweep of system CsrMV (ISSR): per-cluster work held
/// constant by growing the matrix with the cluster count; `speedup`
/// reports the efficiency `T(1) / T(n)` (1.0 = perfect weak scaling).
///
/// # Panics
/// Panics if a run fails or traps.
#[must_use]
pub fn system_csrmv_weak_scaling(
    rows_per_cluster: usize,
    ncols: usize,
    nnz_per_cluster: usize,
    counts: &[usize],
) -> Vec<SystemScalingRow> {
    let model = PowerModel::default();
    let mut out: Vec<SystemScalingRow> = Vec::new();
    for &n in counts {
        let mut rng = gen::rng(7_700 + n as u64);
        let m = gen::csr_uniform::<u16>(&mut rng, rows_per_cluster * n, ncols, nnz_per_cluster * n);
        let x = gen::dense_vector(&mut rng, ncols);
        let run = run_system_csrmv(Variant::Issr, &m, &x, n).expect("system run");
        let expect = reference::csrmv(&m, &x);
        assert!(
            issr_sparse::dense::allclose(&run.y, &expect, 1e-12, 1e-12),
            "weak-scaling {n}-cluster CsrMV diverged"
        );
        let energy = model.evaluate_system(&run.summary);
        let base = out.first().map_or(run.summary.cycles, |r| r.cycles);
        out.push(scaling_row(n, &run.summary, energy, base));
    }
    out
}

/// Full run summary of one joiner-backed SpVV∩ run (ISSR-16, the
/// sweep's operand shape at match density `overlap`) — attribution,
/// lane stats and ROI counters for the joiner binary's breakdown table
/// and bound verdict.
#[must_use]
pub fn spvv_summary(overlap: f64) -> issr_snitch::cc::RunSummary {
    let (dim, nnz) = (8192, 512);
    let mut rng = gen::rng(0x000F_164E + (overlap * 100.0) as u64);
    let (a32, b32) = gen::overlapping_pair::<u32>(&mut rng, dim, nnz, nnz, overlap);
    let (a16, b16) = (a32.with_index_width::<u16>(), b32.with_index_width::<u16>());
    run_spvv_ss(Variant::Issr, &a16, &b16).expect("issr16 run").summary
}

/// ROI stall-cause attribution of one joiner-backed SpVV∩ run
/// (ISSR-16, the sweep's operand shape at match density `overlap`) —
/// the breakdown tables the joiner binary prints and exports.
#[must_use]
pub fn spvv_attribution(overlap: f64) -> issr_snitch::attr::CcAttribution {
    spvv_summary(overlap).attr
}

/// Full run summary of one SpAcc-backed SpGEMM run (ISSR-16 on
/// `regime`) — attribution plus the counters the bound verdict needs.
#[must_use]
pub fn spgemm_summary(regime: SpgemmRegime) -> issr_snitch::cc::RunSummary {
    let mut rng = gen::rng(0x000F_1650 + regime.b_row_nnz as u64);
    let a32 = gen::csr_fixed_row_nnz::<u32>(&mut rng, regime.nrows, regime.inner, regime.a_row_nnz);
    let b32 = gen::csr_fixed_row_nnz::<u32>(&mut rng, regime.inner, regime.ncols, regime.b_row_nnz);
    let (a16, b16) = (a32.with_index_width::<u16>(), b32.with_index_width::<u16>());
    run_spgemm(Variant::Issr, &a16, &b16).expect("issr16 run").summary
}

/// ROI stall-cause attribution of one SpAcc-backed SpGEMM run
/// (ISSR-16 on `regime`) — the breakdown tables the SpGEMM binary
/// prints and exports.
#[must_use]
pub fn spgemm_attribution(regime: SpgemmRegime) -> issr_snitch::attr::CcAttribution {
    spgemm_summary(regime).attr
}

/// Per-phase stall profile of one cluster SpGEMM run (ISSR-16 on
/// `regime`): the two-pass kernel's symbolic, scan/offset and numeric
/// phases resolved by sampling each worker's PC against the program's
/// kernel symbols once per cycle. Host-side only — the kernel and the
/// timing model are untouched, so the profiled run's cycle count equals
/// the unprofiled one's.
///
/// # Panics
/// Panics if the kernel symbols are missing or the cluster times out.
#[must_use]
pub fn cluster_spgemm_phase_profile(regime: SpgemmRegime) -> issr_trace::PhaseProfile {
    use issr_cluster::cluster::{Cluster, ClusterParams};
    let mut rng = gen::rng(0x000F_1651);
    let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, regime.nrows, regime.inner, regime.a_row_nnz);
    let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, regime.inner, regime.ncols, regime.b_row_nnz);
    let params = ClusterParams { sssr: true, ..ClusterParams::default() };
    let plan = ClusterSpgemmPlan::new(&a, &b, params.n_workers as u32);
    let program = build_cluster_spgemm::<u16>(Variant::Issr, &plan);
    // Instruction index × 4 = byte PC (the fetch unit indexes by pc/4).
    let pc_of = |sym: &str| {
        u32::try_from(program.symbol(sym).expect("kernel symbol") * 4).expect("pc fits u32")
    };
    let end = u32::try_from(program.len() * 4).expect("pc fits u32");
    let mut profile = issr_trace::PhaseProfile::new(&[
        ("symbolic", pc_of("worker"), pc_of("scan")),
        ("scan", pc_of("scan"), pc_of("issr_row")),
        ("numeric", pc_of("issr_row"), end),
    ]);
    let mut cluster = Cluster::new(program, params);
    plan.marshal(&mut cluster, &a, &b);
    let budget = 4_000_000 + 1024 * (a.nnz() + b.nnz() + a.nrows()) as u64;
    let mut cycles = 0u64;
    while !cluster.quiescent() {
        assert!(cycles < budget, "phase-profiled SpGEMM run exceeded its budget");
        cluster.tick();
        cycles += 1;
        for cc in &cluster.workers {
            if !cc.core.halted() {
                profile.sample(cc.core.pc(), cc.last_causes().hart);
            }
        }
    }
    profile
}

/// One instrumented system-CsrMV run: the summary whose per-cluster
/// stall-cause breakdowns the JSON telemetry emits, plus the Chrome
/// trace-event export (one track per hart, stream lane and DMA engine
/// per cluster).
#[derive(Clone, Debug)]
pub struct SystemAttributionReport {
    /// The run's system summary (per-cluster attribution included).
    pub summary: issr_system::system::SystemSummary,
    /// The Chrome trace-event document (loadable at `ui.perfetto.dev`).
    pub trace: issr_trace::Json,
}

/// Runs system CsrMV (ISSR) once with the interval recorder enabled and
/// returns attribution + trace. The result is validated against the
/// host reference — tracing must not change a single bit.
///
/// # Panics
/// Panics if the run fails, traps, or diverges from the reference.
#[must_use]
pub fn system_csrmv_attribution(
    m: &CsrMatrix<u16>,
    x: &[f64],
    n_clusters: usize,
    trace_cap: usize,
) -> SystemAttributionReport {
    use issr_system::system::SystemParams;
    let (run, trace) = run_system_csrmv_traced(
        Variant::Issr,
        m,
        x,
        SystemParams { n_clusters, ..SystemParams::default() },
        trace_cap,
    )
    .expect("instrumented system run");
    let expect = reference::csrmv(m, x);
    assert!(
        issr_sparse::dense::allclose(&run.y, &expect, 1e-12, 1e-12),
        "instrumented system CsrMV diverged from the reference"
    );
    SystemAttributionReport { summary: run.summary, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_limits_on_a_coarse_sweep() {
        let rows = fig4a(&[256]);
        let r = rows[0];
        assert!((r.base - 1.0 / 9.0).abs() < 0.02);
        assert!((r.ssr - 1.0 / 7.0).abs() < 0.02);
        assert!(r.issr16 > r.issr32, "16-bit wins at high nnz");
        assert!(r.issr16_m >= r.issr16);
    }

    #[test]
    fn fig4b_ordering() {
        let rows = fig4b(&[64]);
        let r = rows[0];
        assert!(r.issr16 > r.issr32 && r.issr32 > r.ssr && r.ssr > 1.0);
    }

    #[test]
    fn csrmm_check_small_delta() {
        let row = csrmm_check("ragusa18", 2);
        assert!(row.delta < 0.02, "delta {}", row.delta);
    }

    /// The acceptance bar of the sparse-output subsystem: ISSR SpGEMM
    /// at least 3x over the software merge on every default regime.
    #[test]
    fn spgemm_issr_beats_base_on_every_regime() {
        let rows = spgemm_sweep(&smoke_spgemm_regimes());
        for row in &rows {
            assert!(
                row.speedup16() > 3.0,
                "{}: SpGEMM-16 speedup {:.2}",
                row.regime.label,
                row.speedup16()
            );
            assert!(
                row.speedup32() > 3.0,
                "{}: SpGEMM-32 speedup {:.2}",
                row.regime.label,
                row.speedup32()
            );
            assert!(row.spacc.pairs_in > 0, "SpAcc must carry the expansion");
            assert!(
                row.issr16 <= row.issr16_single,
                "{}: double buffering regressed ({} vs {})",
                row.regime.label,
                row.issr16,
                row.issr16_single
            );
        }
        // Regimes with long rows must actually win overlap cycles.
        assert!(
            rows.iter().any(|r| r.spacc.overlap_cycles > 0 && r.double_buffer_gain() > 0),
            "double-buffered drains must overlap feeds somewhere in the sweep"
        );
    }

    /// The overflow-recovery regime traps at least once, converges to a
    /// capacity no larger than the output width, and (inside the
    /// runner) matches the oracle.
    #[test]
    fn spgemm_recovery_regime_traps_and_recovers() {
        let row = spgemm_recovery_report();
        assert!(row.retries >= 1);
        assert!(row.final_cap > row.initial_cap);
        assert!(row.final_cap <= 64);
        assert!(row.peak_nnz <= u64::from(row.final_cap));
    }

    /// The suite energy sweep produces sane numbers for a small and a
    /// mid-size stand-in: finite positive power, ISSR no less
    /// energy-efficient per multiply than the software merge.
    #[test]
    fn spgemm_suite_energy_is_sane() {
        for row in spgemm_suite_sweep(&["ragusa18", "tols2000"]) {
            assert!(row.base_mw.is_finite() && row.base_mw > 0.0, "{row:?}");
            assert!(row.issr_mw.is_finite() && row.issr_mw > 0.0, "{row:?}");
            assert!(row.issr_cycles < row.base_cycles, "{row:?}");
            assert!(row.gain > 1.0, "{row:?}");
        }
    }

    #[test]
    fn joiner_beats_software_merge_on_both_kernels() {
        let spvv = joiner_spvv(&[0.5]);
        assert!(spvv[0].speedup16() > 3.0, "SpVV∩ speedup {:.2}", spvv[0].speedup16());
        assert!(spvv[0].speedup32() > 3.0, "SpVV∩-32 speedup {:.2}", spvv[0].speedup32());
        assert!(spvv[0].joiner_util > 0.2, "joiner util {:.3}", spvv[0].joiner_util);
        let spmspv = joiner_spmspv(&[128]);
        assert!(spmspv[0].speedup16() > 2.0, "SpMSpV speedup {:.2}", spmspv[0].speedup16());
    }
}
