//! Machine-readable bench telemetry (`BENCH_*.json`).
//!
//! Every bench binary accepts `--json <path>` and, when given, writes
//! its headline numbers — cycles, speedups, contention, overlap and
//! stall-cause attribution breakdowns — through this module. The files
//! share one envelope so the CI checker (`--bin bench_check`) can
//! validate any of them against a committed baseline:
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "bench": "system",
//!   "mode": "smoke",
//!   "tolerances": { "cycles": 0.25, ... },
//!   "host": { "sim_cycles": ..., "classes": { ... } },
//!   "results": { "<section>": ... }
//! }
//! ```
//!
//! `tolerances` carries the per-metric relative drift the checker
//! accepts when this file serves as a baseline. `host` is the
//! [`issr_trace::host`] self-profiler section (wall-clock per unit
//! class, idle-tick census, simulated-cycles/sec); it describes the
//! host machine, not the modeled one, so the checker ignores it.
//!
//! Everything is emitted through [`issr_trace::Json`] (insertion-ordered
//! objects), so re-running a binary on unchanged code produces a
//! byte-identical file — the baselines diff cleanly.

use std::path::{Path, PathBuf};

use issr_cluster::cluster::ClusterSummary;
use issr_snitch::attr::CcAttribution;
use issr_system::system::SystemSummary;
use issr_trace::json::obj;
use issr_trace::Json;

/// Version stamp of the envelope; bump on breaking schema changes.
/// v2 added `tolerances` and `host` alongside `results`.
pub const SCHEMA_VERSION: i64 = 2;

/// Default per-metric baseline tolerances. Cluster/system cycle counts
/// wander with matrix reseeds and scheduling changes, so they get the
/// historical 25%; single-CC runs are deterministic per matrix and sit
/// tighter. The checker falls back to its `--tolerance` flag for any
/// metric not listed in a baseline.
pub const DEFAULT_TOLERANCES: [(&str, f64); 9] = [
    ("cycles", 0.25),
    ("elapsed", 0.25),
    ("base16", 0.20),
    ("issr16", 0.20),
    ("issr16_single", 0.20),
    ("base32", 0.20),
    ("issr32", 0.20),
    ("base_cycles", 0.25),
    ("issr_cycles", 0.25),
];

/// Accumulates one binary's result sections into the shared envelope.
#[derive(Clone, Debug)]
pub struct Telemetry {
    bench: String,
    mode: String,
    tolerances: Vec<(String, f64)>,
    host: Option<Json>,
    results: Vec<(String, Json)>,
}

impl Telemetry {
    /// Starts an envelope for bench `bench` running in `mode`
    /// (`"smoke"`, `"full"`, `"suite"`, …) carrying the
    /// [`DEFAULT_TOLERANCES`].
    #[must_use]
    pub fn new(bench: &str, mode: &str) -> Self {
        Self {
            bench: bench.to_owned(),
            mode: mode.to_owned(),
            tolerances: DEFAULT_TOLERANCES.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
            host: None,
            results: Vec::new(),
        }
    }

    /// Appends one named result section.
    pub fn push(&mut self, key: &str, value: Json) {
        self.results.push((key.to_owned(), value));
    }

    /// Overrides (or adds) the baseline tolerance for one metric.
    pub fn set_tolerance(&mut self, metric: &str, tolerance: f64) {
        match self.tolerances.iter_mut().find(|(k, _)| k == metric) {
            Some((_, t)) => *t = tolerance,
            None => self.tolerances.push((metric.to_owned(), tolerance)),
        }
    }

    /// Attaches the host self-profiler section (usually
    /// `issr_trace::host::report()` at the end of `main`).
    pub fn set_host(&mut self, host: Option<Json>) {
        self.host = host;
    }

    /// The complete envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("bench", Json::from(self.bench.as_str())),
            ("mode", Json::from(self.mode.as_str())),
            (
                "tolerances",
                Json::Obj(
                    self.tolerances.iter().map(|(k, v)| (k.clone(), Json::Float(*v))).collect(),
                ),
            ),
        ];
        if let Some(host) = &self.host {
            fields.push(("host", host.clone()));
        }
        fields.push(("results", Json::Obj(self.results.clone())));
        obj(fields)
    }

    /// Writes the envelope to `path` (with a trailing newline).
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        write_json(path, &self.to_json())
    }
}

/// Writes any JSON document to `path` (with a trailing newline).
///
/// # Errors
/// Propagates the underlying I/O error.
pub fn write_json(path: &Path, doc: &Json) -> std::io::Result<()> {
    std::fs::write(path, doc.to_string() + "\n")
}

/// The `--json <path>` argument of the bench binaries, if present.
///
/// # Panics
/// Panics if `--json` is the final argument (no path follows).
#[must_use]
pub fn json_arg() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args.next().expect("--json requires a path argument");
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// The `--threads <n>` argument of the system-level bench binaries, if
/// present: how many host worker threads tick clusters concurrently
/// (results are bit-identical at any count; see `issr-system`).
///
/// # Panics
/// Panics if `--threads` is the final argument or the value does not
/// parse as a positive integer.
#[must_use]
pub fn threads_arg() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            let value = args.next().expect("--threads requires a count argument");
            let n: usize = value.parse().expect("--threads requires a positive integer");
            assert!(n > 0, "--threads requires a positive integer");
            return Some(n);
        }
    }
    None
}

/// Derives the Chrome-trace path from a `--json` path:
/// `BENCH_system.json` → `BENCH_system.trace.json`.
#[must_use]
pub fn trace_path(json_path: &Path) -> PathBuf {
    json_path.with_extension("trace.json")
}

/// One core complex's attribution as JSON: the ROI cycle count every
/// table sums to, plus one breakdown per unit (hart always; stream
/// lanes always; joiner/SpAcc only when they saw traffic).
#[must_use]
pub fn cc_attr_json(attr: &CcAttribution) -> Json {
    let mut fields = vec![("roi_cycles", Json::from(attr.roi_cycles()))];
    let units: Vec<(String, Json)> =
        attr.rows("").into_iter().map(|(name, b)| (name, b.to_json())).collect();
    fields.push(("units", Json::Obj(units)));
    obj(fields)
}

/// One cluster's attribution as JSON. `elapsed` is the cluster's total
/// cycle count; the DMA engine's breakdown sums to it (the engine is
/// classified once per cluster cycle). Each hart object's tables sum to
/// that hart's own `roi_cycles`.
#[must_use]
pub fn cluster_attr_json(c: &ClusterSummary) -> Json {
    let harts: Vec<Json> = c.attr.workers.iter().map(cc_attr_json).collect();
    obj(vec![
        ("elapsed", Json::from(c.cycles)),
        ("dma", c.attr.dma.to_json()),
        ("harts", Json::Arr(harts)),
        ("dmcc", cc_attr_json(&c.attr.dmcc)),
    ])
}

/// A system run's attribution section: headline counters plus the
/// per-cluster breakdown objects.
#[must_use]
pub fn system_attr_json(s: &SystemSummary) -> Json {
    obj(vec![
        ("cycles", Json::from(s.cycles)),
        ("overlap_cycles", Json::from(s.overlap_cycles)),
        ("contention", Json::Float(s.contention_ratio())),
        ("dma_stalls", Json::from(s.total_dma_stalls())),
        ("clusters", Json::Arr(s.clusters.iter().map(cluster_attr_json).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_has_the_fixed_keys() {
        let mut t = Telemetry::new("system", "smoke");
        t.push("rows", Json::Arr(vec![Json::Int(1)]));
        let doc = t.to_json();
        assert_eq!(doc.get("schema_version").and_then(Json::as_int), Some(SCHEMA_VERSION));
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("system"));
        assert_eq!(doc.get("mode").and_then(Json::as_str), Some("smoke"));
        let rows = doc.get("results").and_then(|r| r.get("rows")).and_then(Json::as_arr);
        assert_eq!(rows.map(<[Json]>::len), Some(1));
        // Round-trips through the writer/parser.
        assert_eq!(Json::parse(&doc.to_string()).expect("parse"), doc);
    }

    #[test]
    fn envelope_carries_tolerances_and_host() {
        let mut t = Telemetry::new("system", "smoke");
        t.set_tolerance("cycles", 0.1);
        t.set_tolerance("speedup", 0.05);
        t.set_host(Some(obj(vec![("sim_cycles", Json::Int(7))])));
        let doc = t.to_json();
        let tol = doc.get("tolerances").expect("tolerances object");
        assert_eq!(tol.get("cycles").and_then(Json::as_f64), Some(0.1));
        assert_eq!(tol.get("speedup").and_then(Json::as_f64), Some(0.05));
        assert_eq!(tol.get("elapsed").and_then(Json::as_f64), Some(0.25));
        let host = doc.get("host").expect("host section");
        assert_eq!(host.get("sim_cycles").and_then(Json::as_int), Some(7));
        // Without a host section the key is simply absent.
        let bare = Telemetry::new("x", "smoke").to_json();
        assert!(bare.get("host").is_none());
        assert!(bare.get("tolerances").is_some());
    }

    #[test]
    fn cc_attr_json_sums_match_roi_cycles() {
        use issr_trace::StallCause;
        let mut attr = CcAttribution::with_lanes(2);
        for _ in 0..5 {
            attr.hart.record(StallCause::Active);
            attr.lanes[0].record(StallCause::FifoEmpty);
            attr.lanes[1].record(StallCause::Idle);
        }
        let doc = cc_attr_json(&attr);
        assert_eq!(doc.get("roi_cycles").and_then(Json::as_int), Some(5));
        let units = doc.get("units").expect("units object");
        let hart = units.get("hart").expect("hart breakdown");
        let total: i64 = StallCause::ALL
            .iter()
            .map(|c| hart.get(c.label()).and_then(Json::as_int).unwrap_or(0))
            .sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn trace_path_replaces_extension() {
        assert_eq!(
            trace_path(Path::new("out/BENCH_system.json")),
            PathBuf::from("out/BENCH_system.trace.json")
        );
    }
}
