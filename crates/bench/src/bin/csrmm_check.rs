//! Regenerates the §IV-A CsrMM spot check (Ragusa18 edge case).

use issr_bench::figures::csrmm_check;

fn main() {
    for (name, cols) in [("ragusa18", 2), ("ragusa18", 8), ("g11", 4)] {
        let row = csrmm_check(name, cols);
        println!(
            "{} x {} dense cols: CsrMV util {:.4}, CsrMM util {:.4}, delta {:.4} (paper: ~0.0012 for ragusa18 x 2)",
            row.name, row.b_cols, row.mv_util, row.mm_util, row.delta
        );
    }
}
