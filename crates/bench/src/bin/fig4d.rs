//! Regenerates Fig. 4d: cluster CsrMV energy per suite matrix.
//!
//! Pass `--json <path>` to also write the rows as `BENCH_fig4d.json`.

use issr_bench::figures::fig4d;
use issr_bench::report::markdown_table;
use issr_bench::telemetry::{self, Telemetry};
use issr_kernels::cluster_csrmv::run_cluster_csrmv;
use issr_kernels::variant::Variant;
use issr_sparse::{gen, suite};
use issr_trace::json::obj;
use issr_trace::Json;

fn main() {
    issr_trace::host::install();
    let cap: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(120_000);
    let rows = fig4d(cap);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.nnz.to_string(),
                format!("{:.0}", r.base_mw),
                format!("{:.0}", r.issr_mw),
                format!("{:.0}", r.base_pj),
                format!("{:.0}", r.issr_pj),
                format!("{:.2}", r.gain),
            ]
        })
        .collect();
    println!("Fig. 4d — cluster CsrMV power/energy (paper anchors: BASE ~89 mW, ISSR ~194 mW; 142 -> 53 pJ/fmadd, up to 2.7x)\n");
    println!(
        "{}",
        markdown_table(
            &["matrix", "nnz", "BASE mW", "ISSR mW", "BASE pJ/fmadd", "ISSR pJ/fmadd", "gain"],
            &table
        )
    );
    // Bound verdict of the smallest suite stand-in under the cap
    // (ISSR cluster run, same operands as its sweep row).
    let entry = suite::suite()
        .into_iter()
        .filter(|e| e.nnz <= cap)
        .min_by_key(|e| e.nnz)
        .expect("suite entry under cap");
    let m = entry.build::<u16>();
    let mut rng = gen::rng(0x000F_164D);
    let x = gen::dense_vector(&mut rng, m.ncols());
    let run = run_cluster_csrmv(Variant::Issr, &m, &x).expect("issr run");
    let verdict = issr_bench::verdict::cluster_verdict(&run.summary);
    println!("\n{}", verdict.line(&format!("cluster csrmv {} issr", entry.name)));
    if let Some(path) = telemetry::json_arg() {
        let mut t = Telemetry::new("fig4d", "full");
        t.push("verdict", verdict.to_json());
        t.set_host(issr_trace::host::report());
        t.push(
            "energy",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        obj(vec![
                            ("name", Json::from(r.name.as_str())),
                            ("nnz", Json::from(r.nnz)),
                            ("base_mw", Json::Float(r.base_mw)),
                            ("issr_mw", Json::Float(r.issr_mw)),
                            ("base_pj", Json::Float(r.base_pj)),
                            ("issr_pj", Json::Float(r.issr_pj)),
                            ("gain", Json::Float(r.gain)),
                        ])
                    })
                    .collect(),
            ),
        );
        t.write(&path).expect("write BENCH json");
        println!("wrote {}", path.display());
    }
}
