//! Regenerates Fig. 4d: cluster CsrMV energy per suite matrix.

use issr_bench::figures::fig4d;
use issr_bench::report::markdown_table;

fn main() {
    let cap: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(120_000);
    let rows = fig4d(cap);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.nnz.to_string(),
                format!("{:.0}", r.base_mw),
                format!("{:.0}", r.issr_mw),
                format!("{:.0}", r.base_pj),
                format!("{:.0}", r.issr_pj),
                format!("{:.2}", r.gain),
            ]
        })
        .collect();
    println!("Fig. 4d — cluster CsrMV power/energy (paper anchors: BASE ~89 mW, ISSR ~194 mW; 142 -> 53 pJ/fmadd, up to 2.7x)\n");
    println!(
        "{}",
        markdown_table(
            &["matrix", "nnz", "BASE mW", "ISSR mW", "BASE pJ/fmadd", "ISSR pJ/fmadd", "gain"],
            &table
        )
    );
}
