//! Reports the sparse-sparse index-joiner subsystem: SpVV∩ and SpMSpV
//! cycle counts, joiner vs. software two-pointer merge, across match
//! densities, plus the ROI stall-cause attribution of a representative
//! joiner run.
//!
//! Pass `--smoke` for a reduced sweep (the CI baseline run) and
//! `--json <path>` to also write the rows as `BENCH_joiner.json`.

use issr_bench::figures::{
    default_overlap_sweep, joiner_spmspv, joiner_spvv, spvv_summary, JoinerSpmspvRow, JoinerSpvvRow,
};
use issr_bench::report::markdown_table;
use issr_bench::telemetry::{self, cc_attr_json, Telemetry};
use issr_trace::json::obj;
use issr_trace::{breakdown_table, Json};

fn spvv_json(rows: &[JoinerSpvvRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                obj(vec![
                    ("overlap", Json::Float(r.overlap)),
                    ("base16", Json::from(r.base16)),
                    ("issr16", Json::from(r.issr16)),
                    ("speedup16", Json::Float(r.speedup16())),
                    ("base32", Json::from(r.base32)),
                    ("issr32", Json::from(r.issr32)),
                    ("speedup32", Json::Float(r.speedup32())),
                    ("joiner_util", Json::Float(r.joiner_util)),
                ])
            })
            .collect(),
    )
}

fn spmspv_json(rows: &[JoinerSpmspvRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                obj(vec![
                    ("x_nnz", Json::from(r.x_nnz)),
                    ("base16", Json::from(r.base16)),
                    ("issr16", Json::from(r.issr16)),
                    ("speedup16", Json::Float(r.speedup16())),
                    ("base32", Json::from(r.base32)),
                    ("issr32", Json::from(r.issr32)),
                    ("speedup32", Json::Float(r.speedup32())),
                ])
            })
            .collect(),
    )
}

fn main() {
    // Static verification before anything ticks (see issr-lint).
    issr_lint::assert_shipped_clean();
    issr_trace::host::install();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut t = Telemetry::new("joiner", if smoke { "smoke" } else { "full" });
    let overlaps: Vec<f64> = if smoke { vec![0.0, 0.5, 1.0] } else { default_overlap_sweep() };
    let x_nnzs: Vec<usize> = if smoke { vec![64, 256] } else { vec![16, 64, 256, 1024] };

    let spvv = joiner_spvv(&overlaps);
    let table: Vec<Vec<String>> = spvv
        .iter()
        .map(|r| {
            vec![
                format!("{:.3}", r.overlap),
                r.base16.to_string(),
                r.issr16.to_string(),
                format!("{:.2}x", r.speedup16()),
                r.base32.to_string(),
                r.issr32.to_string(),
                format!("{:.2}x", r.speedup32()),
                format!("{:.3}", r.joiner_util),
            ]
        })
        .collect();
    println!("SpVV∩ — sparse-sparse dot (512 ∩ 512 nnz in 8192), joiner vs software merge\n");
    println!(
        "{}",
        markdown_table(
            &[
                "overlap",
                "BASE-16",
                "ISSR-16",
                "speedup",
                "BASE-32",
                "ISSR-32",
                "speedup",
                "pairs/cycle"
            ],
            &table
        )
    );
    t.push("spvv", spvv_json(&spvv));

    let spmspv = joiner_spmspv(&x_nnzs);
    let table: Vec<Vec<String>> = spmspv
        .iter()
        .map(|r| {
            vec![
                r.x_nnz.to_string(),
                r.base16.to_string(),
                r.issr16.to_string(),
                format!("{:.2}x", r.speedup16()),
                r.base32.to_string(),
                r.issr32.to_string(),
                format!("{:.2}x", r.speedup32()),
            ]
        })
        .collect();
    println!("SpMSpV — 48x2048 CSR (64 nnz/row) times sparse x, joiner vs software merge\n");
    println!(
        "{}",
        markdown_table(
            &["x nnz", "BASE-16", "ISSR-16", "speedup", "BASE-32", "ISSR-32", "speedup"],
            &table
        )
    );
    t.push("spmspv", spmspv_json(&spmspv));

    // Where the cycles of a joiner-fed run go: ROI attribution of the
    // half-overlap SpVV∩ run (ISSR-16), and what bounds it.
    let summary = spvv_summary(0.5);
    println!("stall-cause attribution — SpVV∩ at 0.5 overlap (ISSR-16)\n");
    println!("{}", breakdown_table(&summary.attr.rows("")));
    t.push("spvv_attribution", cc_attr_json(&summary.attr));
    let verdict = issr_bench::verdict::cc_verdict(&summary);
    println!("{}", verdict.line("spvv 0.5 overlap"));
    t.push("verdict", verdict.to_json());
    let critpath = issr_bench::critical::cc_critical_path(&summary);
    println!("{}", issr_bench::critical::critical_path_line("spvv 0.5 overlap", &critpath));
    t.push("critical_path", issr_bench::critical::critical_path_section(&critpath, &verdict));
    t.set_host(issr_trace::host::report());

    if let Some(path) = telemetry::json_arg() {
        t.write(&path).expect("write BENCH json");
        println!("wrote {}", path.display());
    }
}
