//! Reports the sparse-sparse index-joiner subsystem: SpVV∩ and SpMSpV
//! cycle counts, joiner vs. software two-pointer merge, across match
//! densities.

use issr_bench::figures::{default_overlap_sweep, joiner_spmspv, joiner_spvv};
use issr_bench::report::markdown_table;

fn main() {
    let spvv = joiner_spvv(&default_overlap_sweep());
    let table: Vec<Vec<String>> = spvv
        .iter()
        .map(|r| {
            vec![
                format!("{:.3}", r.overlap),
                r.base16.to_string(),
                r.issr16.to_string(),
                format!("{:.2}x", r.speedup16()),
                r.base32.to_string(),
                r.issr32.to_string(),
                format!("{:.2}x", r.speedup32()),
                format!("{:.3}", r.joiner_util),
            ]
        })
        .collect();
    println!("SpVV∩ — sparse-sparse dot (512 ∩ 512 nnz in 8192), joiner vs software merge\n");
    println!(
        "{}",
        markdown_table(
            &[
                "overlap",
                "BASE-16",
                "ISSR-16",
                "speedup",
                "BASE-32",
                "ISSR-32",
                "speedup",
                "pairs/cycle"
            ],
            &table
        )
    );

    let spmspv = joiner_spmspv(&[16, 64, 256, 1024]);
    let table: Vec<Vec<String>> = spmspv
        .iter()
        .map(|r| {
            vec![
                r.x_nnz.to_string(),
                r.base16.to_string(),
                r.issr16.to_string(),
                format!("{:.2}x", r.speedup16()),
                r.base32.to_string(),
                r.issr32.to_string(),
                format!("{:.2}x", r.speedup32()),
            ]
        })
        .collect();
    println!("SpMSpV — 48x2048 CSR (64 nnz/row) times sparse x, joiner vs software merge\n");
    println!(
        "{}",
        markdown_table(
            &["x nnz", "BASE-16", "ISSR-16", "speedup", "BASE-32", "ISSR-32", "speedup"],
            &table
        )
    );
}
