//! Multi-cluster scale-out report: strong/weak scaling of the tiled
//! out-of-TCDM kernels (`system_csrmv`, `system_spgemm`) over 1/2/4
//! clusters sharing one bandwidth-arbitrated main memory, with the
//! contention counters and the system power model alongside.
//!
//! Pass `--smoke` for the scaled-down CI gate; `--threads <n>` (or
//! `ISSR_THREADS=<n>`) picks the host thread count ticking clusters —
//! every output is bit-identical at any count. Either way the run
//! asserts the scale-out invariants, so a regression fails the process:
//!
//! * every multi-cluster result is **bit-identical** to the
//!   single-cluster kernel (CsrMV) / across cluster counts and exact
//!   against the oracle (SpGEMM) — checked inside the sweeps;
//! * DMA/compute overlap is nonzero (the double buffers actually
//!   overlap);
//! * full mode: ≥ 1.5× strong-scaling speedup at 4 clusters on the
//!   full-size (larger-than-TCDM) suite matrix, with contention
//!   visible in the shared-interface counters.
//!
//! The run ends with an instrumented 2-cluster CsrMV: its per-cluster
//! stall-cause attribution is printed as a breakdown table, and with
//! `--json <path>` the whole report lands in `BENCH_system.json` plus a
//! Chrome trace-event export (`<path stem>.trace.json`, loadable at
//! `ui.perfetto.dev`) with one track per hart, stream lane and DMA
//! engine.

use issr_bench::figures::{
    system_csrmv_attribution, system_csrmv_scaling, system_csrmv_weak_scaling,
    system_spgemm_scaling, SystemAttributionReport, SystemScalingRow,
};
use issr_bench::report::markdown_table;
use issr_bench::telemetry::{self, system_attr_json, Telemetry};
use issr_sparse::{gen, suite};
use issr_trace::json::obj;
use issr_trace::{breakdown_table, Json};

fn scaling_table(rows: &[SystemScalingRow], label: &str, speedup_head: &str) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n_clusters.to_string(),
                r.cycles.to_string(),
                format!("{:.2}x", r.speedup),
                format!("{:.1}%", 100.0 * r.contention),
                r.dma_stalls.to_string(),
                r.overlap_cycles.to_string(),
                format!("{:.0}", r.avg_power_mw),
                format!("{:.0}", r.total_nj),
            ]
        })
        .collect();
    println!("{label}\n");
    println!(
        "{}",
        markdown_table(
            &[
                "clusters",
                "cycles",
                speedup_head,
                "contention",
                "dma stalls",
                "overlap cyc",
                "power mW",
                "energy nJ"
            ],
            &table
        )
    );
}

fn scaling_json(rows: &[SystemScalingRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                obj(vec![
                    ("n_clusters", Json::from(r.n_clusters)),
                    ("cycles", Json::from(r.cycles)),
                    ("speedup", Json::Float(r.speedup)),
                    ("contention", Json::Float(r.contention)),
                    ("dma_stalls", Json::from(r.dma_stalls)),
                    ("overlap_cycles", Json::from(r.overlap_cycles)),
                    ("avg_power_mw", Json::Float(r.avg_power_mw)),
                    ("total_nj", Json::Float(r.total_nj)),
                    ("pj_per_fmadd", Json::Float(r.pj_per_fmadd)),
                ])
            })
            .collect(),
    )
}

fn gate_overlap(rows: &[SystemScalingRow], what: &str) {
    for r in rows.iter().filter(|r| r.n_clusters > 1) {
        assert!(
            r.overlap_cycles > 0,
            "{what}: no DMA/compute overlap at {} clusters",
            r.n_clusters
        );
    }
}

fn smoke(t: &mut Telemetry) {
    // CsrMV: a generated operand whose values + indices exceed the
    // 256 KiB TCDM (the block buffers stream it), 1 vs 2 clusters.
    let mut rng = gen::rng(8_800);
    let m = gen::csr_uniform::<u16>(&mut rng, 2000, 512, 40_000);
    let x = gen::dense_vector(&mut rng, 512);
    let rows = system_csrmv_scaling(&m, &x, &[1, 2]);
    scaling_table(&rows, "system CsrMV — smoke (2000x512, 40k nnz, > TCDM)", "speedup");
    gate_overlap(&rows, "CsrMV smoke");
    assert!(
        rows[1].speedup > 1.2,
        "2-cluster CsrMV speedup {:.2}x below the smoke floor",
        rows[1].speedup
    );
    t.push("csrmv_scaling", scaling_json(&rows));
    // SpGEMM: clamped panel capacities force the full multi-panel
    // choreography (claims, double buffers, output drains) on a small
    // product, 1 vs 2 clusters.
    let mut rng = gen::rng(8_801);
    let a = gen::csr_uniform::<u16>(&mut rng, 256, 128, 2_000);
    let b = gen::csr_uniform::<u16>(&mut rng, 128, 160, 1_200);
    let rows = system_spgemm_scaling(&a, &b, &[1, 2], Some((256, 2_048)));
    scaling_table(&rows, "system SpGEMM — smoke (forced multi-panel)", "speedup");
    gate_overlap(&rows, "SpGEMM smoke");
    t.push("spgemm_scaling", scaling_json(&rows));
    println!("smoke gates passed: bit-identity, overlap, 2-cluster speedup\n");
}

fn full(t: &mut Telemetry) {
    // Strong scaling on the heaviest suite stand-in: psmigr_1 at full
    // size (543k nonzeros ≈ 5.4 MB of CSR data — 21x the TCDM).
    let entry = suite::by_name("psmigr_1").expect("suite entry");
    assert!(
        !entry.fits_tcdm::<u16>(u64::from(issr_mem::map::TCDM_SIZE)),
        "strong-scaling operand must exceed the TCDM"
    );
    let m = entry.build::<u16>();
    let mut rng = gen::rng(8_900);
    let x = gen::dense_vector(&mut rng, m.ncols());
    let rows = system_csrmv_scaling(&m, &x, &[1, 2, 4]);
    scaling_table(
        &rows,
        &format!(
            "system CsrMV — strong scaling ({} full size, {} nnz, {:.1}x TCDM)",
            entry.name,
            m.nnz(),
            entry.csr_bytes::<u16>() as f64 / f64::from(issr_mem::map::TCDM_SIZE),
        ),
        "speedup",
    );
    gate_overlap(&rows, "CsrMV strong");
    let at4 = rows.iter().find(|r| r.n_clusters == 4).expect("4-cluster row");
    assert!(
        at4.speedup > 1.5,
        "4-cluster strong-scaling speedup {:.2}x below the 1.5x floor",
        at4.speedup
    );
    assert!(at4.contention > 0.0, "4 clusters on a 16-word port must contend");
    t.push("csrmv_scaling", scaling_json(&rows));

    // Weak scaling: constant per-cluster work.
    let rows = system_csrmv_weak_scaling(600, 512, 45_000, &[1, 2, 4]);
    scaling_table(&rows, "system CsrMV — weak scaling (45k nnz per cluster)", "efficiency");
    t.push("csrmv_weak_scaling", scaling_json(&rows));

    // SpGEMM strong scaling: full-size A (psmigr_1) against a sparse
    // resident B of matching inner dimension.
    let mut rng = gen::rng(8_901);
    let b = gen::csr_uniform::<u16>(&mut rng, m.ncols(), m.ncols(), 6_000);
    let rows = system_spgemm_scaling(&m, &b, &[1, 2, 4], None);
    scaling_table(
        &rows,
        &format!("system SpGEMM — strong scaling (A = {} full size, sparse B)", entry.name),
        "speedup",
    );
    gate_overlap(&rows, "SpGEMM strong");
    let at4 = rows.iter().find(|r| r.n_clusters == 4).expect("4-cluster row");
    assert!(at4.speedup > 1.5, "4-cluster SpGEMM speedup {:.2}x below the 1.5x floor", at4.speedup);
    t.push("spgemm_scaling", scaling_json(&rows));
    println!("scaling gates passed: bit-identity, overlap, >1.5x at 4 clusters\n");
}

/// One instrumented 2-cluster CsrMV (the smoke operand): attribution
/// tables for the report, the attribution section of the JSON file, and
/// the Chrome trace.
fn attribution_report() -> SystemAttributionReport {
    let mut rng = gen::rng(8_800);
    let m = gen::csr_uniform::<u16>(&mut rng, 2000, 512, 40_000);
    let x = gen::dense_vector(&mut rng, 512);
    let report = system_csrmv_attribution(&m, &x, 2, 65_536);
    let mut rows = Vec::new();
    for (i, c) in report.summary.clusters.iter().enumerate() {
        rows.extend(c.attr.merged_workers().rows(&format!("c{i}/workers/")));
        rows.push((format!("c{i}/dmcc"), c.attr.dmcc.hart));
        rows.push((format!("c{i}/dma"), c.attr.dma));
    }
    println!("stall-cause attribution — 2-cluster CsrMV (workers merged per cluster)\n");
    println!("{}", breakdown_table(&rows));
    report
}

fn main() {
    // Static verification before anything ticks (see issr-lint).
    issr_lint::assert_shipped_clean();
    issr_trace::host::install();
    if let Some(n) = telemetry::threads_arg() {
        issr_system::system::set_default_threads(n);
    }
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    let mut t = Telemetry::new("system", if smoke_mode { "smoke" } else { "full" });
    if smoke_mode {
        smoke(&mut t);
    } else {
        full(&mut t);
    }
    let report = attribution_report();
    t.push("attribution", system_attr_json(&report.summary));
    let words_per_cycle = issr_system::system::SystemParams::default().dma_words_per_cycle;
    let verdict = issr_bench::verdict::system_verdict(&report.summary, words_per_cycle);
    println!("{}", verdict.line("system_csrmv x2"));
    t.push("verdict", verdict.to_json());
    let critpath = issr_bench::critical::system_critical_path(&report.summary);
    println!("{}", issr_bench::critical::critical_path_line("system_csrmv x2", &critpath));
    t.push("critical_path", issr_bench::critical::critical_path_section(&critpath, &verdict));
    t.set_host(issr_trace::host::report());
    if let Some(path) = telemetry::json_arg() {
        t.write(&path).expect("write BENCH json");
        let trace = telemetry::trace_path(&path);
        telemetry::write_json(&trace, &report.trace).expect("write Chrome trace");
        println!("wrote {} and {}", path.display(), trace.display());
    }
}
