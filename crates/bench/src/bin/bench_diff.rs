//! Regression differ for two `BENCH_*.json` envelopes.
//!
//! ```text
//! bench_diff <baseline.json> <fresh.json> [--tolerance 0.25]
//! ```
//!
//! Prints a markdown table of every gated cycle metric present in both
//! files — value then, value now, signed drift, and whether the drift
//! is inside the metric's tolerance (the baseline's `tolerances`
//! object, falling back to `--tolerance`) — followed by any bound-
//! classification changes (`verdict.bound` flips) and the host
//! simulation-throughput delta when both files carry a `host` section.
//!
//! Unlike `bench_check` this is a report, not a gate: it always exits
//! zero unless the arguments themselves are unusable, so CI can display
//! the table for every run without failing the build twice for one
//! regression.

use std::path::Path;
use std::process::ExitCode;

use issr_bench::report::markdown_table;
use issr_trace::Json;

/// Integer fields worth diffing (the same set `bench_check` gates).
const CYCLE_KEYS: [&str; 9] = [
    "cycles",
    "elapsed",
    "base16",
    "issr16",
    "issr16_single",
    "base32",
    "issr32",
    "base_cycles",
    "issr_cycles",
];

struct MetricRow {
    path: String,
    metric: String,
    old: i64,
    new: i64,
}

/// Walks both documents in lockstep collecting every gated metric that
/// is an integer on both sides, plus every `bound` and `dominant_edge`
/// string pair.
fn collect(
    base: &Json,
    fresh: &Json,
    path: &str,
    rows: &mut Vec<MetricRow>,
    bounds: &mut Vec<(String, String, String)>,
    edges: &mut Vec<(String, String, String)>,
) {
    match (base, fresh) {
        (Json::Obj(bf), Json::Obj(_)) => {
            for (k, bv) in bf {
                let Some(fv) = fresh.get(k) else { continue };
                let p = format!("{path}/{k}");
                if CYCLE_KEYS.contains(&k.as_str()) {
                    if let (Some(b), Some(f)) = (bv.as_int(), fv.as_int()) {
                        rows.push(MetricRow { path: p, metric: k.clone(), old: b, new: f });
                        continue;
                    }
                }
                if k == "bound" {
                    if let (Some(b), Some(f)) = (bv.as_str(), fv.as_str()) {
                        bounds.push((path.to_owned(), b.to_owned(), f.to_owned()));
                        continue;
                    }
                }
                if k == "dominant_edge" {
                    if let (Some(b), Some(f)) = (bv.as_str(), fv.as_str()) {
                        edges.push((path.to_owned(), b.to_owned(), f.to_owned()));
                        continue;
                    }
                }
                collect(bv, fv, &p, rows, bounds, edges);
            }
        }
        (Json::Arr(bi), Json::Arr(fi)) => {
            for (i, (bv, fv)) in bi.iter().zip(fi.iter()).enumerate() {
                collect(bv, fv, &format!("{path}/{i}"), rows, bounds, edges);
            }
        }
        _ => {}
    }
}

fn tolerance_for(doc: &Json, metric: &str, fallback: f64) -> f64 {
    doc.get("tolerances").and_then(|t| t.get(metric)).and_then(Json::as_f64).unwrap_or(fallback)
}

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: read: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: parse: {e}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fallback_tol = 0.25f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            let v = it.next().ok_or("--tolerance requires a value")?;
            fallback_tol = v.parse().map_err(|e| format!("--tolerance {v}: {e}"))?;
        } else {
            files.push(a.clone());
        }
    }
    let [base_path, fresh_path] = files.as_slice() else {
        return Err("usage: bench_diff <baseline.json> <fresh.json> [--tolerance 0.25]".to_owned());
    };
    let base = load(base_path)?;
    let fresh = load(fresh_path)?;
    let bench = base.get("bench").and_then(Json::as_str).unwrap_or("?");

    let mut rows = Vec::new();
    let mut bounds = Vec::new();
    let mut edges = Vec::new();
    collect(&base, &fresh, "", &mut rows, &mut bounds, &mut edges);

    println!("bench_diff: {bench} — {fresh_path} vs {base_path}\n");
    if rows.is_empty() {
        println!("no shared cycle metrics to compare");
    } else {
        let mut over = 0usize;
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let tol = tolerance_for(&base, &r.metric, fallback_tol);
                let drift = if r.old > 0 { (r.new - r.old) as f64 / r.old as f64 } else { 0.0 };
                let within = drift.abs() <= tol;
                if !within {
                    over += 1;
                }
                vec![
                    r.path.clone(),
                    r.old.to_string(),
                    r.new.to_string(),
                    format!("{:+.1}%", 100.0 * drift),
                    format!("{:.0}%", 100.0 * tol),
                    if within { "ok".to_owned() } else { "OVER".to_owned() },
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(&["metric", "baseline", "fresh", "drift", "tolerance", ""], &table)
        );
        println!("{} metric(s), {} over tolerance\n", rows.len(), over);
    }

    let flips: Vec<&(String, String, String)> = bounds.iter().filter(|(_, b, f)| b != f).collect();
    if flips.is_empty() {
        if !bounds.is_empty() {
            println!("bound classification unchanged");
        }
    } else {
        for (path, b, f) in flips {
            println!("bound change at {path}: {b}-bound -> {f}-bound");
        }
    }

    // Critical-path dominant-edge flips: reported, never fatal — the
    // dominant edge is a blame ranking, and close seconds legitimately
    // swap under small timing shifts.
    let edge_flips: Vec<&(String, String, String)> =
        edges.iter().filter(|(_, b, f)| b != f).collect();
    if edge_flips.is_empty() {
        if !edges.is_empty() {
            println!("critical-path dominant edge unchanged");
        }
    } else {
        for (path, b, f) in edge_flips {
            println!("dominant-edge change at {path}: {b} -> {f}");
        }
    }

    let rate = |doc: &Json| {
        doc.get("host").and_then(|h| h.get("sim_cycles_per_sec")).and_then(Json::as_f64)
    };
    if let (Some(old), Some(new)) = (rate(&base), rate(&fresh)) {
        if old > 0.0 {
            println!(
                "host throughput: {:.0} -> {:.0} sim cycles/s ({:+.1}%)",
                old,
                new,
                100.0 * (new - old) / old
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}
