//! Ablation studies over the design choices DESIGN.md calls out:
//! worker-count scaling of the cluster CsrMV and the contribution of
//! the instruction-cache model.
//!
//! Pass `--json <path>` to also write the rows as `BENCH_ablation.json`.

use issr_bench::report::{markdown_table, ratio};
use issr_bench::telemetry::{self, Telemetry};
use issr_cluster::cluster::ClusterParams;
use issr_kernels::cluster_csrmv::run_cluster_csrmv_with;
use issr_kernels::variant::Variant;
use issr_sparse::gen;
use issr_trace::json::obj;
use issr_trace::Json;

fn main() {
    issr_trace::host::install();
    let mut t = Telemetry::new("ablation", "full");
    let mut rng = gen::rng(0xAB1A);
    let m = gen::csr_clustered::<u16>(&mut rng, 512, 2048, 64, 256);
    let x = gen::dense_vector(&mut rng, 2048);

    // Worker scaling: does the ISSR cluster scale with cores?
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut one_worker = None;
    for n in [1usize, 2, 4, 8] {
        let params = ClusterParams { n_workers: n, ..ClusterParams::default() };
        let run = run_cluster_csrmv_with(Variant::Issr, &m, &x, params).expect("run");
        let cycles = run.summary.cycles;
        let base = *one_worker.get_or_insert(cycles) as f64;
        let scaling = ratio(base, cycles as f64);
        let util = run.summary.cluster_utilization();
        rows.push(vec![
            n.to_string(),
            cycles.to_string(),
            format!("{scaling:.2}"),
            format!("{util:.3}"),
            run.summary.tcdm_stats.conflicts.to_string(),
        ]);
        json_rows.push(obj(vec![
            ("workers", Json::from(n)),
            ("cycles", Json::from(cycles)),
            ("scaling", Json::Float(scaling)),
            ("cluster_util", Json::Float(util)),
            ("tcdm_conflicts", Json::from(run.summary.tcdm_stats.conflicts)),
        ]));
    }
    println!("Ablation 1 — ISSR cluster CsrMV worker scaling (512x2048, 64 nnz/row)\n");
    println!(
        "{}",
        markdown_table(&["workers", "cycles", "scaling", "cluster util", "conflicts"], &rows)
    );
    t.push("worker_scaling", Json::Arr(json_rows));

    // Instruction-cache contribution: ideal fetch vs L0+L1 model.
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut verdict = None;
    for icache in [false, true] {
        let params = ClusterParams { icache, ..ClusterParams::default() };
        let run = run_cluster_csrmv_with(Variant::Issr, &m, &x, params).expect("run");
        if icache {
            verdict = Some(issr_bench::verdict::cluster_verdict(&run.summary));
        }
        let label = if icache { "L0 + shared L1" } else { "ideal fetch" };
        rows.push(vec![
            label.to_owned(),
            run.summary.cycles.to_string(),
            format!("{:.3}", run.summary.cluster_utilization()),
        ]);
        json_rows.push(obj(vec![
            ("fetch_model", Json::from(label)),
            ("cycles", Json::from(run.summary.cycles)),
            ("cluster_util", Json::Float(run.summary.cluster_utilization())),
        ]));
    }
    println!("\nAblation 2 — instruction-cache model (\"some instruction cache stalls\", §IV-B)\n");
    println!("{}", markdown_table(&["fetch model", "cycles", "cluster util"], &rows));
    t.push("icache", Json::Arr(json_rows));

    let verdict = verdict.expect("icache ablation ran");
    println!("\n{}", verdict.line("cluster csrmv 8w icache"));
    t.push("verdict", verdict.to_json());
    t.set_host(issr_trace::host::report());

    if let Some(path) = telemetry::json_arg() {
        t.write(&path).expect("write BENCH json");
        println!("wrote {}", path.display());
    }
}
