//! Ablation studies over the design choices DESIGN.md calls out:
//! worker-count scaling of the cluster CsrMV and the contribution of
//! the instruction-cache model.

use issr_bench::report::markdown_table;
use issr_cluster::cluster::ClusterParams;
use issr_kernels::cluster_csrmv::run_cluster_csrmv_with;
use issr_kernels::variant::Variant;
use issr_sparse::gen;

fn main() {
    let mut rng = gen::rng(0xAB1A);
    let m = gen::csr_clustered::<u16>(&mut rng, 512, 2048, 64, 256);
    let x = gen::dense_vector(&mut rng, 2048);

    // Worker scaling: does the ISSR cluster scale with cores?
    let mut rows = Vec::new();
    let mut one_worker = None;
    for n in [1usize, 2, 4, 8] {
        let params = ClusterParams { n_workers: n, ..ClusterParams::default() };
        let run = run_cluster_csrmv_with(Variant::Issr, &m, &x, params).expect("run");
        let cycles = run.summary.cycles;
        let base = *one_worker.get_or_insert(cycles) as f64;
        rows.push(vec![
            n.to_string(),
            cycles.to_string(),
            format!("{:.2}", base / cycles as f64),
            format!("{:.3}", run.summary.cluster_utilization()),
            run.summary.tcdm_stats.conflicts.to_string(),
        ]);
    }
    println!("Ablation 1 — ISSR cluster CsrMV worker scaling (512x2048, 64 nnz/row)\n");
    println!(
        "{}",
        markdown_table(&["workers", "cycles", "scaling", "cluster util", "conflicts"], &rows)
    );

    // Instruction-cache contribution: ideal fetch vs L0+L1 model.
    let mut rows = Vec::new();
    for icache in [false, true] {
        let params = ClusterParams { icache, ..ClusterParams::default() };
        let run = run_cluster_csrmv_with(Variant::Issr, &m, &x, params).expect("run");
        rows.push(vec![
            if icache { "L0 + shared L1" } else { "ideal fetch" }.to_owned(),
            run.summary.cycles.to_string(),
            format!("{:.3}", run.summary.cluster_utilization()),
        ]);
    }
    println!("\nAblation 2 — instruction-cache model (\"some instruction cache stalls\", §IV-B)\n");
    println!("{}", markdown_table(&["fetch model", "cycles", "cluster util"], &rows));
}
