//! Regenerates Fig. 4c: cluster CsrMV speedup (ISSR-16 over BASE).
//!
//! Pass `--json <path>` to also write the rows as `BENCH_fig4c.json`.

use issr_bench::figures::fig4c;
use issr_bench::report::markdown_table;
use issr_bench::telemetry::{self, Telemetry};
use issr_compare::base_core_equivalent;
use issr_kernels::cluster_csrmv::run_cluster_csrmv;
use issr_kernels::variant::Variant;
use issr_sparse::gen;
use issr_trace::json::obj;
use issr_trace::Json;

fn main() {
    issr_trace::host::install();
    let points = [1, 2, 4, 8, 16, 32, 64, 128];
    let rows = fig4c(&points);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.row_nnz.to_string(),
                r.base_cycles.to_string(),
                r.issr_cycles.to_string(),
                format!("{:.2}", r.speedup),
                format!("{:.3}", r.peak_util),
                format!("{:.3}", r.cluster_util),
            ]
        })
        .collect();
    println!("Fig. 4c — cluster CsrMV, ISSR-16 vs BASE (paper: 1.9x at nnz/row=1 up to 5.8x; peak worker util ~0.71)\n");
    println!(
        "{}",
        markdown_table(
            &["nnz/row", "BASE cyc", "ISSR cyc", "speedup", "peak util", "cluster util"],
            &table
        )
    );
    let peak = rows.iter().map(|r| r.speedup).fold(0.0_f64, f64::max);
    println!(
        "\nPeak speedup {:.2}x -> one ISSR cluster matches ~{:.0} BASE cores (paper: 46).",
        peak,
        base_core_equivalent(8.0, peak)
    );
    // Bound verdict of a representative sweep point (ISSR, 64 nnz/row).
    let mut rng = gen::rng(0x000F_164C + 64);
    let m = gen::csr_clustered::<u16>(&mut rng, 512, 2048, 64, 256);
    let x = gen::dense_vector(&mut rng, 2048);
    let run = run_cluster_csrmv(Variant::Issr, &m, &x).expect("issr run");
    let verdict = issr_bench::verdict::cluster_verdict(&run.summary);
    println!("\n{}", verdict.line("cluster csrmv nnz/row=64 issr"));
    if let Some(path) = telemetry::json_arg() {
        let mut t = Telemetry::new("fig4c", "full");
        t.push("verdict", verdict.to_json());
        t.set_host(issr_trace::host::report());
        t.push(
            "speedup",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        obj(vec![
                            ("row_nnz", Json::from(r.row_nnz)),
                            ("base_cycles", Json::from(r.base_cycles)),
                            ("issr_cycles", Json::from(r.issr_cycles)),
                            ("speedup", Json::Float(r.speedup)),
                            ("peak_util", Json::Float(r.peak_util)),
                            ("cluster_util", Json::Float(r.cluster_util)),
                        ])
                    })
                    .collect(),
            ),
        );
        t.push("peak_speedup", Json::Float(peak));
        t.write(&path).expect("write BENCH json");
        println!("wrote {}", path.display());
    }
}
