//! Regenerates Fig. 4c: cluster CsrMV speedup (ISSR-16 over BASE).

use issr_bench::figures::fig4c;
use issr_bench::report::markdown_table;
use issr_compare::base_core_equivalent;

fn main() {
    let points = [1, 2, 4, 8, 16, 32, 64, 128];
    let rows = fig4c(&points);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.row_nnz.to_string(),
                r.base_cycles.to_string(),
                r.issr_cycles.to_string(),
                format!("{:.2}", r.speedup),
                format!("{:.3}", r.peak_util),
                format!("{:.3}", r.cluster_util),
            ]
        })
        .collect();
    println!("Fig. 4c — cluster CsrMV, ISSR-16 vs BASE (paper: 1.9x at nnz/row=1 up to 5.8x; peak worker util ~0.71)\n");
    println!(
        "{}",
        markdown_table(
            &["nnz/row", "BASE cyc", "ISSR cyc", "speedup", "peak util", "cluster util"],
            &table
        )
    );
    let peak = rows.iter().map(|r| r.speedup).fold(0.0_f64, f64::max);
    println!(
        "\nPeak speedup {:.2}x -> one ISSR cluster matches ~{:.0} BASE cores (paper: 46).",
        peak,
        base_core_equivalent(8.0, peak)
    );
}
