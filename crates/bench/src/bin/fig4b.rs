//! Regenerates Fig. 4b: single-CC CsrMV speedup over BASE vs nnz/row.
//!
//! Pass `--json <path>` to also write the rows as `BENCH_fig4b.json`.

use issr_bench::figures::fig4b;
use issr_bench::report::markdown_table;
use issr_bench::telemetry::{self, Telemetry};
use issr_kernels::csrmv::run_csrmv;
use issr_kernels::variant::Variant;
use issr_sparse::gen;
use issr_trace::json::obj;
use issr_trace::Json;

fn main() {
    issr_trace::host::install();
    let points = [1, 2, 4, 8, 16, 24, 32, 64, 128, 256];
    let rows = fig4b(&points);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.row_nnz.to_string(),
                format!("{:.2}", r.ssr),
                format!("{:.2}", r.issr32),
                format!("{:.2}", r.issr16),
            ]
        })
        .collect();
    println!("Fig. 4b — CC CsrMV speedup over BASE (paper limits: ISSR-16 7.2x, ISSR-32 6.0x; crossover ~nnz 20)\n");
    println!("{}", markdown_table(&["nnz/row", "SSR", "ISSR-32", "ISSR-16"], &table));
    // Bound verdict of a representative sweep point (ISSR-16, 64 nnz/row).
    let mut rng = gen::rng(0x000F_164B + 64);
    let m = gen::csr_fixed_row_nnz::<u32>(&mut rng, 64, 2048, 64).with_index_width::<u16>();
    let x = gen::dense_vector(&mut rng, 2048);
    let summary = run_csrmv(Variant::Issr, &m, &x).expect("issr16 run").summary;
    let verdict = issr_bench::verdict::cc_verdict(&summary);
    println!("\n{}", verdict.line("csrmv nnz/row=64 issr16"));
    if let Some(path) = telemetry::json_arg() {
        let mut t = Telemetry::new("fig4b", "full");
        t.push("verdict", verdict.to_json());
        t.set_host(issr_trace::host::report());
        t.push(
            "speedup",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        obj(vec![
                            ("row_nnz", Json::from(r.row_nnz)),
                            ("ssr", Json::Float(r.ssr)),
                            ("issr32", Json::Float(r.issr32)),
                            ("issr16", Json::Float(r.issr16)),
                        ])
                    })
                    .collect(),
            ),
        );
        t.write(&path).expect("write BENCH json");
        println!("wrote {}", path.display());
    }
}
