//! CI baseline checker for the `BENCH_*.json` telemetry.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--tolerance 0.25]
//! ```
//!
//! Validates that the fresh file a bench binary just wrote (1) carries
//! the shared envelope (`schema_version`, `bench`, `mode`, `results`),
//! (2) keeps its attribution invariants — every per-unit stall-cause
//! breakdown sums to the cycle count it covers — and (3) has not
//! regressed any cycle counter beyond the tolerance relative to the
//! committed baseline. Structural drift (sections, rows or units
//! appearing/disappearing) also fails: that is a schema change and the
//! baseline must be regenerated deliberately.
//!
//! Exits non-zero with one line per violation — the CI gate.

use std::path::Path;
use std::process::ExitCode;

use issr_bench::telemetry::SCHEMA_VERSION;
use issr_trace::{Json, StallCause};

/// Integer fields compared against the baseline within the tolerance.
const CYCLE_KEYS: [&str; 9] = [
    "cycles",
    "elapsed",
    "base16",
    "issr16",
    "issr16_single",
    "base32",
    "issr32",
    "base_cycles",
    "issr_cycles",
];

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: read: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: parse: {e}"))
}

fn check_envelope(doc: &Json, path: &str, errors: &mut Vec<String>) {
    match doc.get("schema_version").and_then(Json::as_int) {
        Some(SCHEMA_VERSION) => {}
        other => {
            errors.push(format!("{path}: schema_version {other:?}, expected {SCHEMA_VERSION}"))
        }
    }
    if doc.get("bench").and_then(Json::as_str).is_none() {
        errors.push(format!("{path}: missing string field 'bench'"));
    }
    if doc.get("mode").and_then(Json::as_str).is_none() {
        errors.push(format!("{path}: missing string field 'mode'"));
    }
    if !matches!(doc.get("results"), Some(Json::Obj(_))) {
        errors.push(format!("{path}: missing object field 'results'"));
    }
}

/// The sum of a stall-cause breakdown object, or `None` if `v` is not
/// one (a breakdown carries exactly the ten cause labels).
fn breakdown_total(v: &Json) -> Option<i64> {
    let Json::Obj(fields) = v else { return None };
    if fields.len() != StallCause::COUNT {
        return None;
    }
    let mut total = 0i64;
    for cause in StallCause::ALL {
        total += v.get(cause.label())?.as_int()?;
    }
    Some(total)
}

/// Walks the document checking the attribution invariants:
/// an object with `roi_cycles` + `units` has every unit breakdown
/// summing to `roi_cycles`; an object with `elapsed` + `dma` has the
/// DMA breakdown summing to `elapsed`.
fn check_attribution(v: &Json, path: &str, errors: &mut Vec<String>) {
    if let (Some(roi), Some(Json::Obj(units))) =
        (v.get("roi_cycles").and_then(Json::as_int), v.get("units"))
    {
        for (name, unit) in units {
            match breakdown_total(unit) {
                Some(total) if total == roi => {}
                Some(total) => errors.push(format!(
                    "{path}/units/{name}: breakdown sums to {total}, roi_cycles is {roi}"
                )),
                None => errors.push(format!("{path}/units/{name}: not a stall-cause breakdown")),
            }
        }
    }
    if let (Some(elapsed), Some(dma)) = (v.get("elapsed").and_then(Json::as_int), v.get("dma")) {
        match breakdown_total(dma) {
            Some(total) if total == elapsed => {}
            Some(total) => {
                errors.push(format!("{path}/dma: breakdown sums to {total}, elapsed is {elapsed}"))
            }
            None => errors.push(format!("{path}/dma: not a stall-cause breakdown")),
        }
    }
    match v {
        Json::Obj(fields) => {
            for (k, child) in fields {
                check_attribution(child, &format!("{path}/{k}"), errors);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                check_attribution(child, &format!("{path}/{i}"), errors);
            }
        }
        _ => {}
    }
}

/// Walks baseline and fresh in parallel: structure must match, and any
/// [`CYCLE_KEYS`] integer may drift by at most `tol` relative to the
/// baseline.
fn compare(base: &Json, fresh: &Json, tol: f64, path: &str, errors: &mut Vec<String>) {
    match (base, fresh) {
        (Json::Obj(bf), Json::Obj(_)) => {
            for (k, bv) in bf {
                let p = format!("{path}/{k}");
                let Some(fv) = fresh.get(k) else {
                    errors.push(format!("{p}: present in baseline, missing in fresh file"));
                    continue;
                };
                if CYCLE_KEYS.contains(&k.as_str()) {
                    if let (Some(b), Some(f)) = (bv.as_int(), fv.as_int()) {
                        let drift = (f - b).abs() as f64;
                        if b > 0 && drift > tol * b as f64 {
                            errors.push(format!(
                                "{p}: {f} vs baseline {b} (drift {:.1}% > {:.0}%)",
                                100.0 * drift / b as f64,
                                100.0 * tol
                            ));
                        }
                        continue;
                    }
                }
                compare(bv, fv, tol, &p, errors);
            }
            if let Json::Obj(ff) = fresh {
                for (k, _) in ff {
                    if base.get(k).is_none() {
                        errors.push(format!(
                            "{path}/{k}: present in fresh file, missing in baseline \
                             (regenerate the baseline)"
                        ));
                    }
                }
            }
        }
        (Json::Arr(bi), Json::Arr(fi)) => {
            if bi.len() != fi.len() {
                errors.push(format!("{path}: {} rows vs baseline {}", fi.len(), bi.len()));
                return;
            }
            for (i, (bv, fv)) in bi.iter().zip(fi.iter()).enumerate() {
                compare(bv, fv, tol, &format!("{path}/{i}"), errors);
            }
        }
        // Scalars other than the gated cycle keys (floats, strings,
        // free-running counters) may drift freely.
        _ => {}
    }
}

fn run() -> Result<(), Vec<String>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tol = 0.25f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            let v = it.next().ok_or_else(|| vec!["--tolerance requires a value".to_owned()])?;
            tol = v.parse().map_err(|e| vec![format!("--tolerance {v}: {e}")])?;
        } else {
            files.push(a.clone());
        }
    }
    let [baseline_path, fresh_path] = files.as_slice() else {
        return Err(vec![
            "usage: bench_check <baseline.json> <fresh.json> [--tolerance 0.25]".to_owned()
        ]);
    };
    let baseline = load(baseline_path).map_err(|e| vec![e])?;
    let fresh = load(fresh_path).map_err(|e| vec![e])?;
    let mut errors = Vec::new();
    check_envelope(&baseline, baseline_path, &mut errors);
    check_envelope(&fresh, fresh_path, &mut errors);
    for key in ["bench", "mode"] {
        let b = baseline.get(key).and_then(Json::as_str);
        let f = fresh.get(key).and_then(Json::as_str);
        if b != f {
            errors.push(format!("{key} mismatch: baseline {b:?}, fresh {f:?}"));
        }
    }
    check_attribution(&fresh, fresh_path, &mut errors);
    check_attribution(&baseline, baseline_path, &mut errors);
    compare(&baseline, &fresh, tol, "", &mut errors);
    if errors.is_empty() {
        println!(
            "bench_check: {fresh_path} ok against {baseline_path} (tolerance {:.0}%)",
            100.0 * tol
        );
        Ok(())
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(errors) => {
            for e in &errors {
                eprintln!("bench_check: {e}");
            }
            ExitCode::FAILURE
        }
    }
}
