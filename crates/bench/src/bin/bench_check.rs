//! CI baseline checker for the `BENCH_*.json` telemetry.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--tolerance 0.25]
//! bench_check --update [--dir baselines]
//! ```
//!
//! Validates that the fresh file a bench binary just wrote (1) carries
//! the shared envelope (`schema_version`, `bench`, `mode`, `results`),
//! (2) keeps its attribution invariants — every per-unit stall-cause
//! breakdown sums to the cycle count it covers — and (3) has not
//! regressed any cycle counter beyond its tolerance relative to the
//! committed baseline. Tolerances are per metric: the baseline's own
//! `tolerances` object names the budget for each gated key, and
//! `--tolerance` is only the fallback for keys it does not name.
//! Structural drift (sections, rows or units appearing/disappearing)
//! also fails: that is a schema change and the baseline must be
//! regenerated deliberately. The `host` section (wall-clock profile,
//! machine-dependent) and the `tolerances` object itself are exempt
//! from the structural walk.
//!
//! `--update` regenerates the committed baselines by spawning the three
//! smoke runs (`joiner`, `spgemm`, `system`, each `--smoke --json`)
//! into the baseline directory.
//!
//! Exits non-zero with one line per violation — the CI gate.

use std::path::Path;
use std::process::ExitCode;

use issr_bench::telemetry::SCHEMA_VERSION;
use issr_trace::{Json, StallCause};

/// Integer fields compared against the baseline within the tolerance.
const CYCLE_KEYS: [&str; 9] = [
    "cycles",
    "elapsed",
    "base16",
    "issr16",
    "issr16_single",
    "base32",
    "issr32",
    "base_cycles",
    "issr_cycles",
];

/// Subtrees exempt from the structural walk: `host` is wall-clock
/// profile data (machine-dependent, absent when the profiler is off)
/// and `tolerances` is checker configuration, not a result.
const SKIP_KEYS: [&str; 2] = ["host", "tolerances"];

/// Per-metric drift budgets: the baseline's `tolerances` object plus
/// the command-line fallback for unnamed metrics.
struct Tolerances {
    per_metric: Vec<(String, f64)>,
    fallback: f64,
}

impl Tolerances {
    fn from_baseline(doc: &Json, fallback: f64) -> Self {
        let mut per_metric = Vec::new();
        if let Some(Json::Obj(fields)) = doc.get("tolerances") {
            for (k, v) in fields {
                if let Some(t) = v.as_f64() {
                    per_metric.push((k.clone(), t));
                }
            }
        }
        Self { per_metric, fallback }
    }

    fn for_metric(&self, key: &str) -> f64 {
        self.per_metric.iter().find(|(k, _)| k == key).map_or(self.fallback, |&(_, t)| t)
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: read: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: parse: {e}"))
}

fn check_envelope(doc: &Json, path: &str, errors: &mut Vec<String>) {
    match doc.get("schema_version").and_then(Json::as_int) {
        Some(SCHEMA_VERSION) => {}
        other => {
            errors.push(format!("{path}: schema_version {other:?}, expected {SCHEMA_VERSION}"))
        }
    }
    if doc.get("bench").and_then(Json::as_str).is_none() {
        errors.push(format!("{path}: missing string field 'bench'"));
    }
    if doc.get("mode").and_then(Json::as_str).is_none() {
        errors.push(format!("{path}: missing string field 'mode'"));
    }
    if !matches!(doc.get("results"), Some(Json::Obj(_))) {
        errors.push(format!("{path}: missing object field 'results'"));
    }
}

/// The sum of a stall-cause breakdown object, or `None` if `v` is not
/// one (a breakdown carries exactly the ten cause labels).
fn breakdown_total(v: &Json) -> Option<i64> {
    let Json::Obj(fields) = v else { return None };
    if fields.len() != StallCause::COUNT {
        return None;
    }
    let mut total = 0i64;
    for cause in StallCause::ALL {
        total += v.get(cause.label())?.as_int()?;
    }
    Some(total)
}

/// Checks a `critical_path` section: an object with `length`, `compute`
/// and an `edges` object must partition exactly — compute plus the sum
/// of every edge-class attribution equals the path length.
fn check_critical_path(v: &Json, path: &str, errors: &mut Vec<String>) {
    let (Some(length), Some(compute), Some(Json::Obj(edges))) = (
        v.get("length").and_then(Json::as_int),
        v.get("compute").and_then(Json::as_int),
        v.get("edges"),
    ) else {
        return;
    };
    let mut blocked = 0i64;
    for (name, n) in edges {
        match n.as_int() {
            Some(n) => blocked += n,
            None => errors.push(format!("{path}/edges/{name}: not an integer")),
        }
    }
    if compute + blocked != length {
        errors.push(format!(
            "{path}: critical path does not partition: {compute} compute + {blocked} \
             edge cycles != length {length}"
        ));
    }
}

/// Walks the document checking the attribution invariants:
/// an object with `roi_cycles` + `units` has every unit breakdown
/// summing to `roi_cycles`; an object with `elapsed` + `dma` has the
/// DMA breakdown summing to `elapsed`; an object with `length` +
/// `compute` + `edges` partitions exactly (a `critical_path` section).
fn check_attribution(v: &Json, path: &str, errors: &mut Vec<String>) {
    check_critical_path(v, path, errors);
    if let (Some(roi), Some(Json::Obj(units))) =
        (v.get("roi_cycles").and_then(Json::as_int), v.get("units"))
    {
        for (name, unit) in units {
            match breakdown_total(unit) {
                Some(total) if total == roi => {}
                Some(total) => errors.push(format!(
                    "{path}/units/{name}: breakdown sums to {total}, roi_cycles is {roi}"
                )),
                None => errors.push(format!("{path}/units/{name}: not a stall-cause breakdown")),
            }
        }
    }
    if let (Some(elapsed), Some(dma)) = (v.get("elapsed").and_then(Json::as_int), v.get("dma")) {
        match breakdown_total(dma) {
            Some(total) if total == elapsed => {}
            Some(total) => {
                errors.push(format!("{path}/dma: breakdown sums to {total}, elapsed is {elapsed}"))
            }
            None => errors.push(format!("{path}/dma: not a stall-cause breakdown")),
        }
    }
    match v {
        Json::Obj(fields) => {
            for (k, child) in fields {
                check_attribution(child, &format!("{path}/{k}"), errors);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                check_attribution(child, &format!("{path}/{i}"), errors);
            }
        }
        _ => {}
    }
}

/// Walks baseline and fresh in parallel: structure must match, and any
/// [`CYCLE_KEYS`] integer may drift by at most its per-metric tolerance
/// relative to the baseline. A violation names the bench, the metric
/// path and both values.
fn compare(
    base: &Json,
    fresh: &Json,
    tol: &Tolerances,
    bench: &str,
    path: &str,
    errors: &mut Vec<String>,
) {
    match (base, fresh) {
        (Json::Obj(bf), Json::Obj(_)) => {
            for (k, bv) in bf {
                if path.is_empty() && SKIP_KEYS.contains(&k.as_str()) {
                    continue;
                }
                let p = format!("{path}/{k}");
                let Some(fv) = fresh.get(k) else {
                    errors.push(format!("{bench}{p}: present in baseline, missing in fresh file"));
                    continue;
                };
                if CYCLE_KEYS.contains(&k.as_str()) {
                    if let (Some(b), Some(f)) = (bv.as_int(), fv.as_int()) {
                        let budget = tol.for_metric(k);
                        let drift = (f - b).abs() as f64;
                        if b > 0 && drift > budget * b as f64 {
                            errors.push(format!(
                                "{bench}{p}: metric '{k}' is {f} vs baseline {b} \
                                 (drift {:.1}% > {:.0}%)",
                                100.0 * drift / b as f64,
                                100.0 * budget
                            ));
                        }
                        continue;
                    }
                }
                compare(bv, fv, tol, bench, &p, errors);
            }
            if let Json::Obj(ff) = fresh {
                for (k, _) in ff {
                    if path.is_empty() && SKIP_KEYS.contains(&k.as_str()) {
                        continue;
                    }
                    if base.get(k).is_none() {
                        errors.push(format!(
                            "{bench}{path}/{k}: present in fresh file, missing in baseline \
                             (regenerate the baseline)"
                        ));
                    }
                }
            }
        }
        (Json::Arr(bi), Json::Arr(fi)) => {
            if bi.len() != fi.len() {
                errors.push(format!("{bench}{path}: {} rows vs baseline {}", fi.len(), bi.len()));
                return;
            }
            for (i, (bv, fv)) in bi.iter().zip(fi.iter()).enumerate() {
                compare(bv, fv, tol, bench, &format!("{path}/{i}"), errors);
            }
        }
        // Scalars other than the gated cycle keys (floats, strings,
        // free-running counters) may drift freely.
        _ => {}
    }
}

/// Regenerates the committed baselines: one smoke run per bench binary,
/// written straight into `dir`.
fn update(dir: &str) -> Result<(), Vec<String>> {
    std::fs::create_dir_all(dir).map_err(|e| vec![format!("{dir}: create: {e}")])?;
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let mut errors = Vec::new();
    for bench in ["joiner", "spgemm", "system"] {
        let out = format!("{dir}/BENCH_{bench}.json");
        println!("bench_check: regenerating {out}");
        let status = std::process::Command::new(&cargo)
            .args(["run", "--release", "-q", "-p", "issr-bench", "--bin", bench, "--"])
            .args(["--smoke", "--json", &out])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => errors.push(format!("{bench} --smoke exited with {s}")),
            Err(e) => errors.push(format!("{bench} --smoke failed to spawn: {e}")),
        }
    }
    // The system binary writes a Chrome trace next to its envelope;
    // the baseline directory only keeps envelopes.
    let _ = std::fs::remove_file(format!("{dir}/BENCH_system.trace.json"));
    if errors.is_empty() {
        println!("bench_check: baselines updated in {dir}/");
        Ok(())
    } else {
        Err(errors)
    }
}

fn run() -> Result<(), Vec<String>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fallback_tol = 0.25f64;
    let mut dir = "baselines".to_owned();
    let mut do_update = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            let v = it.next().ok_or_else(|| vec!["--tolerance requires a value".to_owned()])?;
            fallback_tol = v.parse().map_err(|e| vec![format!("--tolerance {v}: {e}")])?;
        } else if a == "--dir" {
            let v = it.next().ok_or_else(|| vec!["--dir requires a value".to_owned()])?;
            dir = v.clone();
        } else if a == "--update" {
            do_update = true;
        } else {
            files.push(a.clone());
        }
    }
    if do_update {
        return update(&dir);
    }
    let [baseline_path, fresh_path] = files.as_slice() else {
        return Err(vec!["usage: bench_check <baseline.json> <fresh.json> [--tolerance 0.25] \
             | bench_check --update [--dir baselines]"
            .to_owned()]);
    };
    let baseline = load(baseline_path).map_err(|e| vec![e])?;
    let fresh = load(fresh_path).map_err(|e| vec![e])?;
    let mut errors = Vec::new();
    check_envelope(&baseline, baseline_path, &mut errors);
    check_envelope(&fresh, fresh_path, &mut errors);
    for key in ["bench", "mode"] {
        let b = baseline.get(key).and_then(Json::as_str);
        let f = fresh.get(key).and_then(Json::as_str);
        if b != f {
            errors.push(format!("{key} mismatch: baseline {b:?}, fresh {f:?}"));
        }
    }
    check_attribution(&fresh, fresh_path, &mut errors);
    check_attribution(&baseline, baseline_path, &mut errors);
    let bench = baseline.get("bench").and_then(Json::as_str).unwrap_or("?").to_owned();
    let tol = Tolerances::from_baseline(&baseline, fallback_tol);
    compare(&baseline, &fresh, &tol, &bench, "", &mut errors);
    if errors.is_empty() {
        println!(
            "bench_check: {fresh_path} ok against {baseline_path} ({} per-metric tolerance{}, \
             fallback {:.0}%)",
            tol.per_metric.len(),
            if tol.per_metric.len() == 1 { "" } else { "s" },
            100.0 * tol.fallback
        );
        Ok(())
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(errors) => {
            for e in &errors {
                eprintln!("bench_check: {e}");
            }
            ExitCode::FAILURE
        }
    }
}
