//! Regenerates Fig. 4a: single-CC SpVV FPU utilization vs nnz.

use issr_bench::figures::{default_nnz_sweep, fig4a};
use issr_bench::report::markdown_table;

fn main() {
    let rows = fig4a(&default_nnz_sweep());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nnz.to_string(),
                format!("{:.3}", r.base),
                format!("{:.3}", r.ssr),
                format!("{:.3}", r.issr32),
                format!("{:.3}", r.issr32_m),
                format!("{:.3}", r.issr16),
                format!("{:.3}", r.issr16_m),
            ]
        })
        .collect();
    println!("Fig. 4a — CC SpVV FPU utilization (paper limits: BASE 1/9, SSR 1/7, ISSR-32 0.67, ISSR-16 0.80)\n");
    println!(
        "{}",
        markdown_table(
            &["nnz", "BASE", "SSR", "ISSR-32", "ISSR-32m", "ISSR-16", "ISSR-16m"],
            &table
        )
    );
}
