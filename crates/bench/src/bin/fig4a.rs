//! Regenerates Fig. 4a: single-CC SpVV FPU utilization vs nnz.
//!
//! Pass `--json <path>` to also write the rows as `BENCH_fig4a.json`.

use issr_bench::figures::{default_nnz_sweep, fig4a};
use issr_bench::report::markdown_table;
use issr_bench::telemetry::{self, Telemetry};
use issr_kernels::spvv::run_spvv;
use issr_kernels::variant::Variant;
use issr_sparse::gen;
use issr_trace::json::obj;
use issr_trace::Json;

fn main() {
    issr_trace::host::install();
    let rows = fig4a(&default_nnz_sweep());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nnz.to_string(),
                format!("{:.3}", r.base),
                format!("{:.3}", r.ssr),
                format!("{:.3}", r.issr32),
                format!("{:.3}", r.issr32_m),
                format!("{:.3}", r.issr16),
                format!("{:.3}", r.issr16_m),
            ]
        })
        .collect();
    println!("Fig. 4a — CC SpVV FPU utilization (paper limits: BASE 1/9, SSR 1/7, ISSR-32 0.67, ISSR-16 0.80)\n");
    println!(
        "{}",
        markdown_table(
            &["nnz", "BASE", "SSR", "ISSR-32", "ISSR-32m", "ISSR-16", "ISSR-16m"],
            &table
        )
    );
    // Bound verdict of a representative sweep point (ISSR-16, nnz 512).
    let mut rng = gen::rng(0x000F_164A + 512);
    let a = gen::sparse_vector::<u32>(&mut rng, 2048, 512).with_index_width::<u16>();
    let b = gen::dense_vector(&mut rng, 2048);
    let summary = run_spvv(Variant::Issr, &a, &b).expect("issr16 run").summary;
    let verdict = issr_bench::verdict::cc_verdict(&summary);
    println!("\n{}", verdict.line("spvv nnz=512 issr16"));
    if let Some(path) = telemetry::json_arg() {
        let mut t = Telemetry::new("fig4a", "full");
        t.push("verdict", verdict.to_json());
        t.set_host(issr_trace::host::report());
        t.push(
            "utilization",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        obj(vec![
                            ("nnz", Json::from(r.nnz)),
                            ("base", Json::Float(r.base)),
                            ("ssr", Json::Float(r.ssr)),
                            ("issr32", Json::Float(r.issr32)),
                            ("issr32_m", Json::Float(r.issr32_m)),
                            ("issr16", Json::Float(r.issr16)),
                            ("issr16_m", Json::Float(r.issr16_m)),
                        ])
                    })
                    .collect(),
            ),
        );
        t.write(&path).expect("write BENCH json");
        println!("wrote {}", path.display());
    }
}
