//! Reports the sparse-output subsystem: row-wise Gustavson SpGEMM,
//! SpAcc hardware expansion vs. the software merge, across sparsity
//! regimes, plus per-unit SpAcc activity, the cluster version, and the
//! trap-driven overflow-recovery regime (optimistic `ACC_BUF_CAP`,
//! grow-and-retry on `StreamFault::Overflow`).
//!
//! Pass `--smoke` for the scaled-down CI sweep. Either way the run
//! asserts ISSR ≥ 3x over BASE on every regime and that the recovery
//! regime actually traps and converges, so a regression fails the
//! process (the CI gate), not just the tables.
//!
//! Pass `--suite` to instead sweep cluster SpGEMM (`C = M·M`) over
//! TCDM-resident windows of the SuiteSparse stand-ins and report the
//! power model's energy table for the sparse-output kernel.

use issr_bench::figures::{
    cluster_spgemm_phase_profile, cluster_spgemm_report, default_spgemm_regimes,
    smoke_spgemm_regimes, spgemm_recovery_report, spgemm_suite_sweep, spgemm_summary, spgemm_sweep,
    SpgemmRow, SpgemmSuiteRow,
};
use issr_bench::report::{markdown_table, ratio};
use issr_bench::telemetry::{self, cc_attr_json, Telemetry};
use issr_trace::json::obj;
use issr_trace::{breakdown_table, Json};

fn regimes_json(rows: &[SpgemmRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                obj(vec![
                    ("label", Json::from(r.regime.label)),
                    ("base16", Json::from(r.base16)),
                    ("issr16", Json::from(r.issr16)),
                    ("speedup16", Json::Float(r.speedup16())),
                    ("issr16_single", Json::from(r.issr16_single)),
                    ("base32", Json::from(r.base32)),
                    ("issr32", Json::from(r.issr32)),
                    ("speedup32", Json::Float(r.speedup32())),
                    ("spacc_peak_nnz", Json::from(r.spacc.peak_nnz)),
                    ("spacc_overlap_cycles", Json::from(r.spacc.overlap_cycles)),
                ])
            })
            .collect(),
    )
}

fn suite_json(rows: &[SpgemmSuiteRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                obj(vec![
                    ("name", Json::from(r.name.as_str())),
                    ("window", Json::from(r.window)),
                    ("nnz", Json::from(r.nnz)),
                    ("c_nnz", Json::from(r.c_nnz)),
                    ("macs", Json::from(r.macs)),
                    ("base_cycles", Json::from(r.base_cycles)),
                    ("issr_cycles", Json::from(r.issr_cycles)),
                    ("base_mw", Json::Float(r.base_mw)),
                    ("issr_mw", Json::Float(r.issr_mw)),
                    ("base_pj_per_mac", Json::Float(r.base_pj_per_mac)),
                    ("issr_pj_per_mac", Json::Float(r.issr_pj_per_mac)),
                    ("gain", Json::Float(r.gain)),
                ])
            })
            .collect(),
    )
}

fn suite_energy_table(t: &mut Telemetry) {
    let names: Vec<String> =
        issr_sparse::suite::suite().into_iter().map(|e| e.name.to_owned()).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rows = spgemm_suite_sweep(&name_refs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{0}x{0}", r.window),
                r.nnz.to_string(),
                r.c_nnz.to_string(),
                r.macs.to_string(),
                format!("{:.1}", r.base_mw),
                format!("{:.1}", r.issr_mw),
                format!("{:.1}", r.base_pj_per_mac),
                format!("{:.1}", r.issr_pj_per_mac),
                format!("{:.2}x", r.gain),
            ]
        })
        .collect();
    println!("SpGEMM energy — SuiteSparse stand-ins (TCDM windows, cluster C = M·M)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "matrix",
                "window",
                "nnz",
                "C nnz",
                "macs",
                "BASE mW",
                "ISSR mW",
                "BASE pJ/mac",
                "ISSR pJ/mac",
                "gain"
            ],
            &table
        )
    );
    for r in &rows {
        assert!(
            r.gain > 1.0,
            "{}: sparse-output energy efficiency regressed ({:.2}x)",
            r.name,
            r.gain
        );
    }
    t.push("suite_energy", suite_json(&rows));
}

fn main() {
    // Static verification before anything ticks: a kernel that fails
    // the linter would waste the whole sweep discovering it.
    issr_lint::assert_shipped_clean();
    issr_trace::host::install();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let suite = std::env::args().any(|a| a == "--suite");
    let mode = if suite {
        "suite"
    } else if smoke {
        "smoke"
    } else {
        "full"
    };
    let mut t = Telemetry::new("spgemm", mode);
    if suite {
        suite_energy_table(&mut t);
        t.set_host(issr_trace::host::report());
        if let Some(path) = telemetry::json_arg() {
            t.write(&path).expect("write BENCH json");
            println!("wrote {}", path.display());
        }
        return;
    }
    let regimes = if smoke { smoke_spgemm_regimes() } else { default_spgemm_regimes() };

    let rows = spgemm_sweep(&regimes);
    for r in &rows {
        assert!(
            r.speedup16() > 3.0 && r.speedup32() > 3.0,
            "{}: SpGEMM speedup regression (16-bit {:.2}x, 32-bit {:.2}x; floor 3x)",
            r.regime.label,
            r.speedup16(),
            r.speedup32(),
        );
        assert!(
            r.issr16 <= r.issr16_single,
            "{}: double-buffered SpAcc regression ({} vs single-buffered {})",
            r.regime.label,
            r.issr16,
            r.issr16_single,
        );
    }
    assert!(
        rows.iter().any(|r| r.double_buffer_gain() > 0),
        "double-buffered SpAcc shows no cycle reduction on any regime",
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.regime.label.to_owned(),
                format!("{}x{}x{}", r.regime.nrows, r.regime.inner, r.regime.ncols),
                format!("{}/{}", r.regime.a_row_nnz, r.regime.b_row_nnz),
                r.base16.to_string(),
                r.issr16.to_string(),
                format!("{:.2}x", r.speedup16()),
                r.base32.to_string(),
                r.issr32.to_string(),
                format!("{:.2}x", r.speedup32()),
            ]
        })
        .collect();
    t.push("regimes", regimes_json(&rows));
    println!("SpGEMM — row-wise Gustavson, SpAcc subsystem vs software merge\n");
    println!(
        "{}",
        markdown_table(
            &[
                "regime", "shape", "nnz/row", "BASE-16", "ISSR-16", "speedup", "BASE-32",
                "ISSR-32", "speedup"
            ],
            &table
        )
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.regime.label.to_owned(),
                r.spacc.feeds.to_string(),
                r.spacc.pairs_in.to_string(),
                r.spacc.merges.to_string(),
                r.spacc.steps.to_string(),
                r.spacc.drains.to_string(),
                r.spacc.out_words.to_string(),
                r.spacc.peak_nnz.to_string(),
            ]
        })
        .collect();
    println!("SpAcc unit activity (ISSR-16 runs)\n");
    println!(
        "{}",
        markdown_table(
            &["regime", "feeds", "pairs", "merges", "steps", "drains", "out words", "peak nnz"],
            &table
        )
    );

    // Double-buffered row storage: a row's drain overlaps the next
    // row's first feed. Report the measured delta per regime.
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.regime.label.to_owned(),
                r.issr16_single.to_string(),
                r.issr16.to_string(),
                r.double_buffer_gain().to_string(),
                format!(
                    "{:.1}%",
                    100.0 * ratio(r.double_buffer_gain() as f64, r.issr16_single as f64)
                ),
                r.spacc.overlap_cycles.to_string(),
                r.spacc.port_shared.to_string(),
            ]
        })
        .collect();
    println!("SpAcc double-buffered drains (ISSR-16: single vs double buffer)\n");
    println!(
        "{}",
        markdown_table(
            &["regime", "single", "double", "saved", "gain", "overlap cyc", "port shared"],
            &table
        )
    );

    // Overflow recovery: optimistic ACC_BUF_CAP, trap-driven
    // grow-and-retry (validated against the oracle inside the runner).
    let rec = spgemm_recovery_report();
    println!(
        "overflow recovery: ACC_BUF_CAP {} -> {} over {} overflow trap(s); clean run {} \
         cycles, peak row nnz {}\n",
        rec.initial_cap, rec.final_cap, rec.retries, rec.cycles, rec.peak_nnz,
    );
    assert!(rec.retries >= 1, "the overflow-recovery regime must trap and recover");
    t.push(
        "recovery",
        obj(vec![
            ("initial_cap", Json::from(u64::from(rec.initial_cap))),
            ("final_cap", Json::from(u64::from(rec.final_cap))),
            ("retries", Json::from(u64::from(rec.retries))),
            ("cycles", Json::from(rec.cycles)),
            ("peak_nnz", Json::from(rec.peak_nnz)),
        ]),
    );

    let cluster = cluster_spgemm_report(regimes[regimes.len() - 1]);
    println!(
        "cluster SpGEMM ({}): BASE {} cycles, ISSR {} cycles ({:.2}x)\n",
        cluster.regime.label,
        cluster.base_cycles,
        cluster.issr_cycles,
        ratio(cluster.base_cycles as f64, cluster.issr_cycles as f64),
    );
    let table: Vec<Vec<String>> = cluster
        .spacc
        .iter()
        .enumerate()
        .map(|(h, s)| {
            vec![
                h.to_string(),
                s.feeds.to_string(),
                s.pairs_in.to_string(),
                s.merges.to_string(),
                s.drains.to_string(),
                s.out_words.to_string(),
                s.peak_nnz.to_string(),
            ]
        })
        .collect();
    println!("per-worker SpAcc units (cluster ISSR run)\n");
    println!(
        "{}",
        markdown_table(
            &["worker", "feeds", "pairs", "merges", "drains", "out words", "peak nnz"],
            &table
        )
    );
    t.push(
        "cluster",
        obj(vec![
            ("label", Json::from(cluster.regime.label)),
            ("base_cycles", Json::from(cluster.base_cycles)),
            ("issr_cycles", Json::from(cluster.issr_cycles)),
        ]),
    );

    // Where the cycles of an SpAcc-backed run go: ROI attribution of
    // the last regime's ISSR-16 run, plus the bound verdict.
    let last = regimes[regimes.len() - 1];
    let summary = spgemm_summary(last);
    println!("stall-cause attribution — {} regime (ISSR-16)\n", last.label);
    println!("{}", breakdown_table(&summary.attr.rows("")));
    t.push("attribution", cc_attr_json(&summary.attr));
    let verdict = issr_bench::verdict::cc_verdict(&summary);
    println!("{}", verdict.line(&format!("spgemm {}", last.label)));
    t.push("verdict", verdict.to_json());
    let critpath = issr_bench::critical::cc_critical_path(&summary);
    println!(
        "{}",
        issr_bench::critical::critical_path_line(&format!("spgemm {}", last.label), &critpath)
    );
    t.push("critical_path", issr_bench::critical::critical_path_section(&critpath, &verdict));

    // The two-pass cluster kernel's phases, resolved by PC sampling:
    // where the symbolic, scan and numeric passes each burn cycles.
    let profile = cluster_spgemm_phase_profile(last);
    println!("cluster SpGEMM phase profile — {} regime (ISSR, PC-sampled)\n", last.label);
    println!("{}", breakdown_table(&profile.rows()));
    t.push("phases", profile.to_json());
    t.set_host(issr_trace::host::report());

    if let Some(path) = telemetry::json_arg() {
        t.write(&path).expect("write BENCH json");
        println!("wrote {}", path.display());
    }
}
