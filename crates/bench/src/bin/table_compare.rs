//! Regenerates the §V related-work comparison using a measured cluster
//! utilization.

use issr_bench::figures::fig4c;
use issr_bench::report::markdown_table;
use issr_compare::{compare, related_systems};

fn main() {
    // Measure the cluster at a dense operating point.
    let rows = fig4c(&[128]);
    let measured = rows[0].cluster_util;
    let systems = related_systems();
    let table: Vec<Vec<String>> = systems
        .iter()
        .map(|s| {
            vec![
                s.name.to_owned(),
                s.precision.to_owned(),
                s.occupancy.map_or("-".into(), |o| format!("{:.0}%", o * 100.0)),
                format!("{:.2}%", s.fp_utilization * 100.0),
                s.source.to_owned(),
            ]
        })
        .collect();
    println!("§V — peak FP utilization in CSR SpMV\n");
    println!(
        "{}",
        markdown_table(&["system", "precision", "occupancy", "FP util", "source"], &table)
    );
    let c = compare(measured);
    println!(
        "\nSnitch cluster + ISSR (measured here): {:.1}% FP64 utilization -> {:.1}x over the GTX 1080 Ti FP64 (paper: 2.8x), {:.0}x over Xeon Phi CVR (paper: 70x).",
        c.cluster_utilization * 100.0,
        c.vs_gpu_fp64,
        c.vs_cpu
    );
}
