//! Regenerates the area/timing numbers of §IV-C and Fig. 2.

use issr_bench::report::markdown_table;
use issr_model::area::{ClusterArea, StreamerArea, ISSR_DELTA_KGE};
use issr_model::timing::CriticalPath;

fn main() {
    let streamer = StreamerArea::paper_config();
    let rows: Vec<Vec<String>> = streamer
        .blocks
        .iter()
        .map(|b| {
            vec![
                b.name.to_owned(),
                format!("{:.1}", b.kge),
                format!("{:.0}%", 100.0 * b.kge / streamer.total_kge()),
            ]
        })
        .collect();
    println!("Fig. 2 / §IV-C — streamer area breakdown\n");
    println!("{}", markdown_table(&["block", "kGE", "of streamer"], &rows));
    println!(
        "ISSR delta over SSR: {:.1} kGE ({:.0}%)",
        ISSR_DELTA_KGE,
        100.0 * streamer.issr_over_ssr()
    );
    let cluster = ClusterArea::paper_config();
    println!(
        "Cluster overhead of 8 ISSRs: {:.1} kGE = {:.2}% (paper: 0.8%)",
        cluster.issr_upgrade_kge(),
        100.0 * cluster.issr_overhead()
    );
    let t = CriticalPath::paper_results();
    println!(
        "Critical path: SSR {:.0} ps -> ISSR {:.0} ps; meets 1 GHz: {} (slack {:.0} ps)",
        t.ssr_ps,
        t.issr_ps,
        t.meets_clock(),
        t.slack_ps()
    );
}
