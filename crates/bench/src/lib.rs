//! # issr-bench
//!
//! Experiment runners regenerating every table and figure of the paper's
//! evaluation (§IV–§V). Each figure has a runner returning plain rows
//! and a binary (`src/bin/`) that prints them as a markdown table;
//! `benches/figures.rs` wraps representative points in Criterion.

#![forbid(unsafe_code)]

pub mod critical;
pub mod figures;
pub mod report;
pub mod telemetry;
pub mod verdict;

pub use figures::*;
