//! Critical-path sections for the `BENCH_*.json` envelopes.
//!
//! Thin adapters from the simulator's three run-summary shapes to
//! [`issr_trace::critpath::extract`], plus the one JSON section every
//! bench binary emits: the exact cycle partition (`compute` + per-edge
//! cycles == `length`), the dominant edge with its what-if savings
//! bound, and a cross-check against the roofline verdict the same
//! envelope already carries — two independent models that should (and
//! are reported whether they) agree on what the run is bound by.

use issr_cluster::cluster::{ClusterAttribution, ClusterSummary};
use issr_snitch::cc::RunSummary;
use issr_system::system::SystemSummary;
use issr_trace::analyze::Verdict;
use issr_trace::{CriticalPath, Json};

/// The critical path of a single-CC run: blame walk from the hart at
/// end of ROI, one level of descent into the busiest lane.
#[must_use]
pub fn cc_critical_path(summary: &RunSummary) -> CriticalPath {
    summary.attr.critical_path()
}

/// The critical path of a standalone-cluster run: blame walk from the
/// worker with the longest ROI.
#[must_use]
pub fn cluster_critical_path(summary: &ClusterSummary) -> CriticalPath {
    summary.attr.critical_path()
}

/// The critical path of a multi-cluster run, over the merged per-hart
/// view (the same aggregation the system verdict classifies).
#[must_use]
pub fn system_critical_path(summary: &SystemSummary) -> CriticalPath {
    let attr: ClusterAttribution =
        issr_trace::merge::merge_all(summary.clusters.iter().map(|c| &c.attr));
    attr.critical_path()
}

/// The `critical_path` envelope section: the path's own fields plus the
/// roofline cross-check. `verdict_bound` restates the envelope's
/// roofline classification, `suggested_bound` is what the blame walk
/// alone would conclude, and `agrees` is their comparison — a cheap
/// tripwire for either model drifting.
#[must_use]
pub fn critical_path_section(path: &CriticalPath, verdict: &Verdict) -> Json {
    let mut fields = match path.to_json() {
        Json::Obj(fields) => fields,
        other => return other,
    };
    let suggested = path.suggested_bound();
    fields.push(("suggested_bound".to_owned(), Json::from(suggested.label())));
    fields.push(("verdict_bound".to_owned(), Json::from(verdict.bound.label())));
    fields.push(("agrees".to_owned(), Json::from(suggested == verdict.bound)));
    Json::Obj(fields)
}

/// The human one-liner printed next to the verdict line: dominant edge,
/// its savings bound, and the partition it came from.
#[must_use]
pub fn critical_path_line(label: &str, path: &CriticalPath) -> String {
    match path.dominant() {
        Some(edge) => format!(
            "critical-path[{label}]: {} cycles = {} compute + {} blocked; \
             dominant edge {} (eliminating it saves <= {} cycles)",
            path.length,
            path.compute,
            path.blocked(),
            edge.label(),
            path.get(edge),
        ),
        None => format!(
            "critical-path[{label}]: {} cycles, all compute — no blocking edges",
            path.length
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_kernels::cluster_csrmv::run_cluster_csrmv;
    use issr_kernels::variant::Variant;
    use issr_sparse::gen;

    /// A real cluster run yields an exactly partitioned path whose JSON
    /// section carries the cross-check keys.
    #[test]
    fn cluster_critical_path_partitions_exactly() {
        let mut rng = gen::rng(0x000F_1701);
        let m = gen::csr_fixed_row_nnz::<u16>(&mut rng, 64, 64, 12);
        let x = gen::dense_vector(&mut rng, 64);
        let run = run_cluster_csrmv(Variant::Issr, &m, &x).expect("run");
        let path = cluster_critical_path(&run.summary);
        assert!(path.length > 0);
        assert_eq!(path.compute + path.blocked(), path.length, "exact partition");
        let verdict = crate::verdict::cluster_verdict(&run.summary);
        let section = critical_path_section(&path, &verdict);
        assert_eq!(section.get("length").and_then(Json::as_int), Some(path.length as i64));
        assert!(section.get("suggested_bound").and_then(Json::as_str).is_some());
        assert!(section.get("verdict_bound").and_then(Json::as_str).is_some());
        assert!(section.get("agrees").is_some());
        let edges = section.get("edges").expect("edges object");
        let Json::Obj(pairs) = edges else { panic!("edges must be an object") };
        let sum: i64 = pairs.iter().filter_map(|(_, v)| v.as_int()).sum();
        assert_eq!(sum as u64, path.blocked(), "edge attribution sums to the blocked share");
        assert!(critical_path_line("test", &path).contains("cycles"));
    }
}
