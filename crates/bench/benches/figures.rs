//! Criterion wrappers: one benchmark per table/figure, on representative
//! points sized for CI budgets. Use the `src/bin/` binaries for the full
//! sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use issr_bench::figures;

fn bench_fig4a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4a_spvv_utilization");
    g.sample_size(10);
    g.bench_function("nnz256", |b| b.iter(|| figures::fig4a(&[256])));
    g.finish();
}

fn bench_fig4b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4b_csrmv_speedup");
    g.sample_size(10);
    g.bench_function("row_nnz32", |b| b.iter(|| figures::fig4b(&[32])));
    g.finish();
}

fn bench_fig4c(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4c_cluster_speedup");
    g.sample_size(10);
    g.bench_function("row_nnz16", |b| b.iter(|| figures::fig4c(&[16])));
    g.finish();
}

fn bench_fig4d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4d_cluster_energy");
    g.sample_size(10);
    g.bench_function("small_suite", |b| b.iter(|| figures::fig4d(10_000)));
    g.finish();
}

fn bench_csrmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("csrmm_spot_check");
    g.sample_size(10);
    g.bench_function("ragusa18x2", |b| b.iter(|| figures::csrmm_check("ragusa18", 2)));
    g.finish();
}

criterion_group!(benches, bench_fig4a, bench_fig4b, bench_fig4c, bench_fig4d, bench_csrmm);
criterion_main!(benches);
