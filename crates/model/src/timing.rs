//! Timing model (§IV-C): critical paths of the synthesized streamers.

/// Critical-path lengths in picoseconds (GF22FDX, SSG corner, 0.72 V).
#[derive(Clone, Copy, Debug)]
pub struct CriticalPath {
    /// Baseline SSR address generator.
    pub ssr_ps: f64,
    /// ISSR address generator (index serializer + offset adder added).
    pub issr_ps: f64,
    /// Target clock period.
    pub clock_ps: f64,
}

impl CriticalPath {
    /// The paper's synthesis results: 301 ps → 425 ps at a 1 GHz target.
    #[must_use]
    pub fn paper_results() -> Self {
        Self { ssr_ps: 301.0, issr_ps: 425.0, clock_ps: 1000.0 }
    }

    /// Whether the ISSR still meets the Snitch clock target.
    #[must_use]
    pub fn meets_clock(&self) -> bool {
        self.issr_ps <= self.clock_ps
    }

    /// Slack at the target clock, in picoseconds.
    #[must_use]
    pub fn slack_ps(&self) -> f64 {
        self.clock_ps - self.issr_ps
    }

    /// Relative path growth over the SSR.
    #[must_use]
    pub fn growth(&self) -> f64 {
        (self.issr_ps - self.ssr_ps) / self.ssr_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_paths() {
        let t = CriticalPath::paper_results();
        assert!(t.meets_clock());
        assert!(t.slack_ps() > 500.0, "the ISSR easily meets 1 GHz");
        assert!((t.growth() - 0.412).abs() < 0.01);
    }
}
