//! # issr-model
//!
//! Area, timing, power and energy models of the ISSR system, carrying
//! the paper's published GF22FDX numbers (§IV-C/D) and the same
//! estimation methodology: anchor power values scaled by component
//! utilizations measured in simulation.

#![forbid(unsafe_code)]

pub mod area;
pub mod power;
pub mod timing;

pub use area::{AreaBlock, ClusterArea, StreamerArea};
pub use power::{EnergyBreakdown, PowerModel};
pub use timing::CriticalPath;
