//! Area model (kGE) from §IV-C and Fig. 2.
//!
//! Published anchors: the default-parameterized ISSR is **4.4 kGE
//! (43 %) larger** than the equivalent SSR, and equipping all eight
//! worker cores of a cluster with ISSRs instead of SSRs costs only
//! **0.8 %** cluster area. Block sizes below are derived from those
//! anchors plus the Snitch papers' core (≈10 kGE) and FP64 FPU
//! (≈100 kGE) figures.

/// One named block with its complexity in kilo-gate-equivalents.
#[derive(Clone, Copy, Debug)]
pub struct AreaBlock {
    /// Block name.
    pub name: &'static str,
    /// Complexity in kGE.
    pub kge: f64,
}

/// The indirection extension's incremental cost (paper: 4.4 kGE).
pub const ISSR_DELTA_KGE: f64 = 4.4;
/// SSR lane complexity, derived from "43 % larger": 4.4 / 0.43.
pub const SSR_KGE: f64 = ISSR_DELTA_KGE / 0.43;
/// ISSR lane complexity.
pub const ISSR_KGE: f64 = SSR_KGE + ISSR_DELTA_KGE;
/// Register-file switch of the streamer (Fig. 2 D).
pub const SWITCH_KGE: f64 = 1.5;
/// Snitch integer core (≈10 kGE, [6]).
pub const SNITCH_CORE_KGE: f64 = 10.0;
/// Double-precision FPU (≈100 kGE, [6]).
pub const FPU_KGE: f64 = 100.0;

/// Hierarchical area of the ISSR streamer (Fig. 2 annotations).
#[derive(Clone, Debug)]
pub struct StreamerArea {
    /// Blocks in display order.
    pub blocks: Vec<AreaBlock>,
}

impl StreamerArea {
    /// The paper's streamer: one SSR + one ISSR + switch.
    #[must_use]
    pub fn paper_config() -> Self {
        Self {
            blocks: vec![
                AreaBlock { name: "switch", kge: SWITCH_KGE },
                AreaBlock { name: "ssr lane", kge: SSR_KGE },
                AreaBlock { name: "issr lane", kge: ISSR_KGE },
                // ISSR sub-blocks (sum to the ISSR lane):
                AreaBlock { name: "  issr: affine addrgen + cfg", kge: SSR_KGE - 6.0 },
                AreaBlock { name: "  issr: indirection unit", kge: ISSR_DELTA_KGE },
                AreaBlock { name: "  issr: fifos + data mover", kge: 6.0 },
            ],
        }
    }

    /// Total streamer area (top-level blocks only).
    #[must_use]
    pub fn total_kge(&self) -> f64 {
        self.blocks.iter().filter(|b| !b.name.starts_with(' ')).map(|b| b.kge).sum()
    }

    /// ISSR-over-SSR relative growth (paper: 43 %).
    #[must_use]
    pub fn issr_over_ssr(&self) -> f64 {
        (ISSR_KGE - SSR_KGE) / SSR_KGE
    }
}

/// Cluster-level area accounting.
#[derive(Clone, Copy, Debug)]
pub struct ClusterArea {
    /// Worker cores.
    pub n_workers: f64,
    /// Everything except the per-core ISSR deltas (derived from the
    /// 0.8 % anchor: 8 × 4.4 kGE ≈ 0.8 % of the SSR-only cluster).
    pub ssr_cluster_kge: f64,
}

impl ClusterArea {
    /// The paper's eight-worker cluster.
    #[must_use]
    pub fn paper_config() -> Self {
        // 8 × 4.4 kGE = 0.8 % of the SSR-only cluster ⇒ ≈ 4.4 MGE.
        let ssr_cluster_kge = 8.0 * ISSR_DELTA_KGE / 0.008;
        Self { n_workers: 8.0, ssr_cluster_kge }
    }

    /// Absolute area added by upgrading every worker's SSR to an ISSR.
    #[must_use]
    pub fn issr_upgrade_kge(&self) -> f64 {
        self.n_workers * ISSR_DELTA_KGE
    }

    /// Relative cluster overhead of the upgrade (paper: 0.8 %).
    #[must_use]
    pub fn issr_overhead(&self) -> f64 {
        self.issr_upgrade_kge() / self.ssr_cluster_kge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issr_delta_matches_paper() {
        let s = StreamerArea::paper_config();
        assert!((s.issr_over_ssr() - 0.43).abs() < 1e-9);
        assert!((ISSR_KGE - SSR_KGE - 4.4).abs() < 1e-12);
    }

    #[test]
    fn issr_subblocks_sum_to_lane() {
        let s = StreamerArea::paper_config();
        let sub: f64 = s.blocks.iter().filter(|b| b.name.starts_with(' ')).map(|b| b.kge).sum();
        assert!((sub - ISSR_KGE).abs() < 1e-9);
    }

    #[test]
    fn cluster_overhead_matches_paper() {
        let c = ClusterArea::paper_config();
        assert!((c.issr_overhead() - 0.008).abs() < 1e-12);
        assert!((c.issr_upgrade_kge() - 35.2).abs() < 1e-9);
        // The implied cluster is in the multi-MGE range, as expected for
        // 8 CCs with 100 kGE FPUs plus 256 KiB of SRAM.
        assert!(c.ssr_cluster_kge > 3000.0);
    }

    #[test]
    fn streamer_total_is_switch_plus_lanes() {
        let s = StreamerArea::paper_config();
        assert!((s.total_kge() - (SWITCH_KGE + SSR_KGE + ISSR_KGE)).abs() < 1e-9);
    }
}
