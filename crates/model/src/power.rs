//! Power and energy model (§IV-D).
//!
//! The paper synthesizes the cluster, runs PrimeTime on two anchor
//! matrices (G11 low-efficiency, G7 high-efficiency) and scales dynamic
//! power with component utilizations measured in RTL simulation for the
//! rest. We mirror the methodology: per-event dynamic energies plus a
//! cluster leakage floor, **calibrated so the paper's anchors come out**
//! (BASE ≈ 89 mW, ISSR ≈ 194 mW average cluster power at 1 GHz;
//! 142 → 53 pJ per fmadd), then driven entirely by activity counters
//! from the cycle-level simulator.

use issr_cluster::cluster::ClusterSummary;

/// Per-event dynamic energies (picojoules) and static power (milliwatts)
/// at 1 GHz, TT corner.
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// Integer-pipeline instruction issue.
    pub core_op_pj: f64,
    /// FPU-subsystem operation (FMA-dominated).
    pub fpu_op_pj: f64,
    /// TCDM bank access.
    pub tcdm_access_pj: f64,
    /// Streamer element (address generation + FIFO transit).
    pub stream_elem_pj: f64,
    /// DMA word moved (wide datapath + main-memory interface).
    pub dma_word_pj: f64,
    /// Cluster leakage + clock tree floor.
    pub static_mw: f64,
    /// Clock frequency in GHz (energy/cycle = power in mW / GHz).
    pub freq_ghz: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            core_op_pj: 5.2,
            fpu_op_pj: 15.0,
            tcdm_access_pj: 5.0,
            stream_elem_pj: 3.7,
            dma_word_pj: 10.0,
            static_mw: 15.0,
            freq_ghz: 1.0,
        }
    }
}

/// Energy accounting for one cluster run.
#[derive(Clone, Copy, Debug)]
pub struct EnergyBreakdown {
    /// Total energy in nanojoules.
    pub total_nj: f64,
    /// Average power in milliwatts.
    pub avg_power_mw: f64,
    /// Energy per retired multiply-accumulate, in picojoules.
    pub pj_per_fmadd: f64,
}

impl PowerModel {
    /// Dynamic energy of one cluster's activity counters — the shared
    /// five-term formula of the cluster and system evaluations.
    fn cluster_dynamic_pj(&self, summary: &ClusterSummary) -> f64 {
        let core_ops: u64 = summary.worker_metrics.iter().map(|m| m.instret).sum::<u64>()
            + summary.dmcc_metrics.instret;
        let fpu_ops: u64 = summary.worker_metrics.iter().map(|m| m.roi.fpu_ops).sum();
        let stream_elems: u64 = summary
            .lane_stats
            .iter()
            .flatten()
            .map(|l| l.data_reads + l.data_writes + l.idx_words)
            .sum();
        let dma_words = summary.dma_stats.words_in + summary.dma_stats.words_out;
        self.core_op_pj * core_ops as f64
            + self.fpu_op_pj * fpu_ops as f64
            + self.tcdm_access_pj * summary.tcdm_stats.grants as f64
            + self.stream_elem_pj * stream_elems as f64
            + self.dma_word_pj * dma_words as f64
    }

    fn breakdown(
        &self,
        dynamic_pj: f64,
        cycles: u64,
        static_clusters: usize,
        fmadds: u64,
    ) -> EnergyBreakdown {
        let cycles = cycles.max(1) as f64;
        let static_pj = self.static_mw / self.freq_ghz * cycles * static_clusters.max(1) as f64;
        let total_pj = dynamic_pj + static_pj;
        EnergyBreakdown {
            total_nj: total_pj / 1000.0,
            avg_power_mw: total_pj / cycles * self.freq_ghz,
            pj_per_fmadd: total_pj / fmadds.max(1) as f64,
        }
    }

    /// Evaluates a multi-cluster system run: per-cluster dynamic energy
    /// from each [`ClusterSummary`]'s activity counters (DMA words
    /// charge the shared main-memory interface), plus the leakage floor
    /// paid once per cluster over the *system* wall clock — contention
    /// lengthens the run, so denied bandwidth shows up as
    /// leakage-cycles, exactly how it hurts real silicon.
    #[must_use]
    pub fn evaluate_system(&self, summary: &issr_system::system::SystemSummary) -> EnergyBreakdown {
        let dynamic_pj: f64 = summary.clusters.iter().map(|c| self.cluster_dynamic_pj(c)).sum();
        self.breakdown(dynamic_pj, summary.cycles, summary.clusters.len(), summary.total_fmadds())
    }

    /// Evaluates a cluster run.
    #[must_use]
    pub fn evaluate(&self, summary: &ClusterSummary) -> EnergyBreakdown {
        self.breakdown(self.cluster_dynamic_pj(summary), summary.cycles, 1, summary.total_fmadds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_kernels::cluster_csrmv::run_cluster_csrmv;
    use issr_kernels::variant::Variant;
    use issr_sparse::{gen, suite};

    /// The calibration check: on a G7-like high-efficiency matrix the
    /// model must land in the neighbourhood of the paper's anchors
    /// (89 mW BASE, 194 mW ISSR) and reproduce the ~2.7× efficiency gap.
    #[test]
    fn anchors_land_near_paper_values() {
        let entry = suite::by_name("g7").expect("suite entry");
        let m = entry.build::<u16>();
        let mut rng = gen::rng(4242);
        let x = gen::dense_vector(&mut rng, m.ncols());
        let model = PowerModel::default();
        let base = run_cluster_csrmv(Variant::Base, &m, &x).expect("base run");
        let issr = run_cluster_csrmv(Variant::Issr, &m, &x).expect("issr run");
        let pb = model.evaluate(&base.summary);
        let pi = model.evaluate(&issr.summary);
        // Power ordering and ballpark (±40% of anchors).
        assert!(pb.avg_power_mw > 50.0 && pb.avg_power_mw < 125.0, "BASE {pb:?}");
        assert!(pi.avg_power_mw > 120.0 && pi.avg_power_mw < 270.0, "ISSR {pi:?}");
        assert!(pi.avg_power_mw > pb.avg_power_mw, "ISSR draws more power");
        // ...but finishes so much faster that energy/fmadd drops ~2-3x.
        let gain = pb.pj_per_fmadd / pi.pj_per_fmadd;
        assert!(gain > 1.7 && gain < 3.5, "efficiency gain {gain:.2}");
    }

    /// System-level evaluation: two clusters draw more average power
    /// than one (twice the leakage plus concurrent activity) on the
    /// same workload, while energy per multiply stays in a sane band —
    /// the scale-out tradeoff the scaling bench reports.
    #[test]
    fn system_energy_scales_with_clusters() {
        use issr_kernels::system_csrmv::run_system_csrmv;
        let mut rng = gen::rng(909);
        let m = gen::csr_uniform::<u16>(&mut rng, 400, 256, 16_000);
        let x = gen::dense_vector(&mut rng, 256);
        let model = PowerModel::default();
        let one = run_system_csrmv(Variant::Issr, &m, &x, 1).expect("1-cluster run");
        let two = run_system_csrmv(Variant::Issr, &m, &x, 2).expect("2-cluster run");
        let e1 = model.evaluate_system(&one.summary);
        let e2 = model.evaluate_system(&two.summary);
        assert!(e2.avg_power_mw > e1.avg_power_mw, "two clusters draw more power");
        assert!(two.summary.cycles < one.summary.cycles, "two clusters finish sooner");
        let ratio = e2.pj_per_fmadd / e1.pj_per_fmadd;
        assert!(
            ratio > 0.8 && ratio < 2.0,
            "scale-out energy per multiply out of band ({ratio:.2})"
        );
    }

    #[test]
    fn energy_scales_with_work() {
        let mut rng = gen::rng(77);
        let small = gen::csr_fixed_row_nnz::<u16>(&mut rng, 64, 256, 8);
        let big = gen::csr_fixed_row_nnz::<u16>(&mut rng, 64, 256, 64);
        let x = gen::dense_vector(&mut rng, 256);
        let model = PowerModel::default();
        let e_small =
            model.evaluate(&run_cluster_csrmv(Variant::Issr, &small, &x).unwrap().summary).total_nj;
        let e_big =
            model.evaluate(&run_cluster_csrmv(Variant::Issr, &big, &x).unwrap().summary).total_nj;
        assert!(e_big > 2.0 * e_small, "8x the nonzeros must cost much more energy");
    }
}
