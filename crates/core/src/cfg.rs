//! Streamer configuration registers and job specifications.
//!
//! Each lane exposes a shadowed configuration register file to the core
//! (Fig. 1, block 1): `scfgwi`/`scfgri` address it with
//! `addr = reg << 5 | lane`. Writing a *pointer* register launches a job
//! from the current shadow state — a read job via `RPTR[d]` (affine,
//! `d + 1` dimensions) or a write job via `WPTR[d]`. With indirection
//! enabled in `IDX_CFG`, the pointer carries the **index array** address
//! and the affine configuration is fixed to one dimension, as in the
//! paper (§II-A); the streamed element count still comes from
//! `BOUNDS[0] + 1`.

use crate::affine::MAX_DIMS;
use crate::serializer::IndexSize;

/// Register indices within a lane's configuration space.
pub mod reg {
    /// Status word: bit 0 = done, bit 1 = busy.
    pub const STATUS: u16 = 0;
    /// Element repetition count (each datum delivered `REPEAT + 1` times).
    pub const REPEAT: u16 = 1;
    /// Loop bounds minus one, dimensions 0..=3.
    pub const BOUNDS: [u16; 4] = [2, 3, 4, 5];
    /// Relative byte strides, dimensions 0..=3.
    pub const STRIDES: [u16; 4] = [6, 7, 8, 9];
    /// Indirection configuration: bit 0 enable, bit 1 index size
    /// (0 = 16-bit, 1 = 32-bit), bits 7:4 extra index shift.
    pub const IDX_CFG: u16 = 10;
    /// Data base address for indirection.
    pub const DATA_BASE: u16 = 12;
    /// Read-job pointer registers (write launches the job).
    pub const RPTR: [u16; 4] = [16, 17, 18, 19];
    /// Write-job pointer registers (write launches the job).
    pub const WPTR: [u16; 4] = [20, 21, 22, 23];
}

/// Builds an `scfgwi`/`scfgri` address from a register and lane index.
#[must_use]
pub fn cfg_addr(register: u16, lane: u8) -> u16 {
    (register << 5) | u16::from(lane & 0x1F)
}

/// Splits an `scfg` address into `(register, lane)`.
#[must_use]
pub fn split_addr(addr: u16) -> (u16, u8) {
    (addr >> 5, (addr & 0x1F) as u8)
}

/// The shadow configuration a core writes before launching a job.
#[derive(Clone, Copy, Debug, Default)]
pub struct CfgShadow {
    /// Element repetition count.
    pub repeat: u32,
    /// Loop bounds minus one.
    pub bounds: [u32; MAX_DIMS],
    /// Relative byte strides.
    pub strides: [i32; MAX_DIMS],
    /// Raw indirection configuration word.
    pub idx_cfg: u32,
    /// Data base address for indirection.
    pub data_base: u32,
}

impl CfgShadow {
    /// Whether indirection mode is enabled.
    #[must_use]
    pub fn indirect(&self) -> bool {
        self.idx_cfg & 1 != 0
    }

    /// Configured index width.
    #[must_use]
    pub fn index_size(&self) -> IndexSize {
        if self.idx_cfg & 2 != 0 {
            IndexSize::U32
        } else {
            IndexSize::U16
        }
    }

    /// Extra index shift (beyond the static `<< 3` serving doubles).
    #[must_use]
    pub fn index_shift(&self) -> u32 {
        (self.idx_cfg >> 4) & 0xF
    }

    /// Reads a shadow register (the value `scfgri` returns).
    #[must_use]
    pub fn read(&self, register: u16) -> u32 {
        match register {
            reg::REPEAT => self.repeat,
            r if reg::BOUNDS.contains(&r) => self.bounds[(r - reg::BOUNDS[0]) as usize],
            r if reg::STRIDES.contains(&r) => {
                self.strides[(r - reg::STRIDES[0]) as usize] as u32
            }
            reg::IDX_CFG => self.idx_cfg,
            reg::DATA_BASE => self.data_base,
            _ => 0,
        }
    }

    /// Writes a shadow register. Pointer registers are handled by the
    /// lane (they launch jobs); everything else lands here.
    pub fn write(&mut self, register: u16, value: u32) {
        match register {
            reg::REPEAT => self.repeat = value,
            r if reg::BOUNDS.contains(&r) => {
                self.bounds[(r - reg::BOUNDS[0]) as usize] = value;
            }
            r if reg::STRIDES.contains(&r) => {
                self.strides[(r - reg::STRIDES[0]) as usize] = value as i32;
            }
            reg::IDX_CFG => self.idx_cfg = value,
            reg::DATA_BASE => self.data_base = value,
            _ => {}
        }
    }
}

/// Whether a job streams from memory to the register file or back.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobKind {
    /// Memory → register (gather / unit-stride load stream).
    Read,
    /// Register → memory (scatter / unit-stride store stream).
    Write,
}

/// The address pattern of a job.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// SSR-style affine loop nest.
    Affine {
        /// Data pointer the job was launched with.
        base: u32,
        /// Number of active dimensions.
        dims: usize,
        /// Bounds minus one.
        bounds: [u32; MAX_DIMS],
        /// Relative byte strides.
        strides: [i64; MAX_DIMS],
    },
    /// ISSR streaming indirection: `data_base + (idx << (3 + shift))`.
    Indirect {
        /// Index array byte address (any index-aligned address).
        idx_base: u32,
        /// Index width.
        idx_size: IndexSize,
        /// Extra shift for power-of-two-strided higher axes.
        shift: u32,
        /// Dense operand base address.
        data_base: u32,
        /// Number of elements to stream.
        count: u64,
    },
}

/// A fully-specified streaming job, decoded from the shadow registers at
/// pointer-write time.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Read or write stream.
    pub kind: JobKind,
    /// Each datum is delivered `repeat + 1` times (read jobs only).
    pub repeat: u32,
    /// The address pattern.
    pub pattern: Pattern,
}

impl JobSpec {
    /// Decodes a job from the shadow state and a pointer write.
    #[must_use]
    pub fn from_shadow(shadow: &CfgShadow, kind: JobKind, dims: usize, pointer: u32) -> Self {
        let pattern = if shadow.indirect() {
            Pattern::Indirect {
                idx_base: pointer,
                idx_size: shadow.index_size(),
                shift: shadow.index_shift(),
                data_base: shadow.data_base,
                count: u64::from(shadow.bounds[0]) + 1,
            }
        } else {
            let mut strides = [0i64; MAX_DIMS];
            for (dst, &src) in strides.iter_mut().zip(shadow.strides.iter()) {
                *dst = i64::from(src);
            }
            Pattern::Affine { base: pointer, dims, bounds: shadow.bounds, strides }
        };
        JobSpec { kind, repeat: shadow.repeat, pattern }
    }

    /// Total number of elements the FPU side will see.
    #[must_use]
    pub fn total_elements(&self) -> u64 {
        let raw = match &self.pattern {
            Pattern::Affine { dims, bounds, .. } => {
                (0..*dims).map(|d| u64::from(bounds[d]) + 1).product()
            }
            Pattern::Indirect { count, .. } => *count,
        };
        raw * (u64::from(self.repeat) + 1)
    }
}

/// Encodes the `IDX_CFG` register value.
#[must_use]
pub fn idx_cfg_word(size: IndexSize, shift: u32) -> u32 {
    let size_bit = match size {
        IndexSize::U16 => 0,
        IndexSize::U32 => 2,
    };
    1 | size_bit | ((shift & 0xF) << 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_packing_round_trips() {
        let addr = cfg_addr(reg::RPTR[0], 1);
        assert_eq!(split_addr(addr), (reg::RPTR[0], 1));
        assert_eq!(split_addr(cfg_addr(reg::STATUS, 0)), (reg::STATUS, 0));
    }

    #[test]
    fn shadow_read_write_round_trip() {
        let mut s = CfgShadow::default();
        s.write(reg::REPEAT, 3);
        s.write(reg::BOUNDS[0], 99);
        s.write(reg::BOUNDS[2], 7);
        s.write(reg::STRIDES[0], 8);
        s.write(reg::STRIDES[1], (-16i32) as u32);
        s.write(reg::IDX_CFG, idx_cfg_word(IndexSize::U32, 2));
        s.write(reg::DATA_BASE, 0x0010_4000);
        assert_eq!(s.read(reg::REPEAT), 3);
        assert_eq!(s.read(reg::BOUNDS[0]), 99);
        assert_eq!(s.read(reg::BOUNDS[2]), 7);
        assert_eq!(s.read(reg::STRIDES[0]), 8);
        assert_eq!(s.read(reg::STRIDES[1]) as i32, -16);
        assert!(s.indirect());
        assert_eq!(s.index_size(), IndexSize::U32);
        assert_eq!(s.index_shift(), 2);
        assert_eq!(s.read(reg::DATA_BASE), 0x0010_4000);
    }

    #[test]
    fn affine_job_decode() {
        let mut s = CfgShadow::default();
        s.write(reg::BOUNDS[0], 9);
        s.write(reg::STRIDES[0], 8);
        let job = JobSpec::from_shadow(&s, JobKind::Read, 1, 0x0010_0000);
        assert_eq!(job.total_elements(), 10);
        match job.pattern {
            Pattern::Affine { base, dims, .. } => {
                assert_eq!(base, 0x0010_0000);
                assert_eq!(dims, 1);
            }
            Pattern::Indirect { .. } => panic!("expected affine"),
        }
    }

    #[test]
    fn indirect_job_decode() {
        let mut s = CfgShadow::default();
        s.write(reg::BOUNDS[0], 15);
        s.write(reg::IDX_CFG, idx_cfg_word(IndexSize::U16, 0));
        s.write(reg::DATA_BASE, 0x0010_8000);
        let job = JobSpec::from_shadow(&s, JobKind::Read, 1, 0x0010_0002);
        match job.pattern {
            Pattern::Indirect { idx_base, idx_size, data_base, count, shift } => {
                assert_eq!(idx_base, 0x0010_0002);
                assert_eq!(idx_size, IndexSize::U16);
                assert_eq!(data_base, 0x0010_8000);
                assert_eq!(count, 16);
                assert_eq!(shift, 0);
            }
            Pattern::Affine { .. } => panic!("expected indirect"),
        }
    }

    #[test]
    fn repeat_scales_elements() {
        let mut s = CfgShadow::default();
        s.write(reg::BOUNDS[0], 4);
        s.write(reg::REPEAT, 2);
        let job = JobSpec::from_shadow(&s, JobKind::Read, 1, 0);
        assert_eq!(job.total_elements(), 15);
    }
}
