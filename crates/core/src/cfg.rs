//! Streamer configuration registers and job specifications.
//!
//! Each lane exposes a shadowed configuration register file to the core
//! (Fig. 1, block 1): `scfgwi`/`scfgri` address it with
//! `addr = reg << 5 | lane`. Writing a *pointer* register launches a job
//! from the current shadow state — a read job via `RPTR[d]` (affine,
//! `d + 1` dimensions) or a write job via `WPTR[d]`. With indirection
//! enabled in `IDX_CFG`, the pointer carries the **index array** address
//! and the affine configuration is fixed to one dimension, as in the
//! paper (§II-A); the streamed element count still comes from
//! `BOUNDS[0] + 1`.

use crate::affine::MAX_DIMS;
use crate::serializer::IndexSize;

/// Register indices within a lane's configuration space.
pub mod reg {
    /// Status word: bit 0 = done, bit 1 = busy.
    pub const STATUS: u16 = 0;
    /// Element repetition count (each datum delivered `REPEAT + 1` times).
    pub const REPEAT: u16 = 1;
    /// Loop bounds minus one, dimensions 0..=3.
    pub const BOUNDS: [u16; 4] = [2, 3, 4, 5];
    /// Relative byte strides, dimensions 0..=3.
    pub const STRIDES: [u16; 4] = [6, 7, 8, 9];
    /// Indirection configuration: bit 0 enable, bit 1 index size
    /// (0 = 16-bit, 1 = 32-bit), bits 7:4 extra index shift.
    pub const IDX_CFG: u16 = 10;
    /// Data base address for indirection.
    pub const DATA_BASE: u16 = 12;
    /// Read-job pointer registers (write launches the job).
    pub const RPTR: [u16; 4] = [16, 17, 18, 19];
    /// Write-job pointer registers (write launches the job).
    pub const WPTR: [u16; 4] = [20, 21, 22, 23];
    /// Joiner configuration: bit 0 enable, bits 2:1 mode
    /// ([`super::JoinerMode`]), bit 3 index size (0 = 16-bit, 1 = 32-bit).
    pub const JOIN_CFG: u16 = 24;
    /// Second (B-side) index array base address for joiner jobs.
    pub const JOIN_IDX_B: u16 = 25;
    /// B-side value array base address for joiner jobs.
    pub const JOIN_DATA_B: u16 = 26;
    /// A-side element count for joiner jobs (raw count; zero allowed).
    pub const JOIN_NNZ_A: u16 = 27;
    /// B-side element count for joiner jobs (raw count; zero allowed).
    pub const JOIN_NNZ_B: u16 = 28;
    /// Joiner status: pairs emitted by the most recent joiner job
    /// (streamer-level, read-only).
    pub const JOIN_COUNT: u16 = 29;
    /// Sparse-accumulator configuration: bit 0 index size (0 = 16-bit,
    /// 1 = 32-bit), bit 1 count-only mode (feeds merge indices without
    /// consuming the write stream — the symbolic-phase handshake
    /// mirroring the joiner's `JOIN_COUNT` mode).
    pub const ACC_CFG: u16 = 30;
    /// Element count of the next SpAcc feed job.
    pub const ACC_COUNT: u16 = 31;
    /// SpAcc feed launch: writing the input index-array address starts a
    /// feed job pairing those indices with values pushed to the write
    /// stream of the SpAcc's lane.
    pub const ACC_FEED: u16 = 32;
    /// Value output base address for the next SpAcc drain (8-aligned).
    pub const ACC_VAL_OUT: u16 = 33;
    /// SpAcc drain launch: writing the output index-array address drains
    /// the accumulated row as (idcs[], vals[]) and clears the buffer.
    pub const ACC_DRAIN: u16 = 34;
    /// SpAcc row occupancy (read-only; stable only while the unit is
    /// idle — poll [`ACC_STATUS`] first).
    pub const ACC_NNZ: u16 = 35;
    /// SpAcc status word: bit 0 = done/idle, bit 1 = busy, bit 2 = all
    /// feed jobs retired (read-only). With double-buffered row storage a
    /// drain may still be writing while bit 2 is already set — kernels
    /// poll bit 2 before reading [`ACC_NNZ`] so the next row's feeds
    /// overlap the previous row's drain.
    pub const ACC_STATUS: u16 = 36;
    /// SpAcc row-buffer clear: writing any value discards the
    /// accumulated row (the symbolic phase's per-row reset — count-only
    /// rows are never drained). Retries while the unit is busy.
    pub const ACC_CLEAR: u16 = 37;
    /// SpAcc row-buffer capacity in elements (hardware sizing; resets to
    /// [`super::SPACC_ROW_CAP_RESET`]). Launching a feed with capacity
    /// zero is a configuration fault that traps the core.
    pub const ACC_BUF_CAP: u16 = 38;
}

/// Reset value of the SpAcc row-buffer capacity register
/// ([`reg::ACC_BUF_CAP`]), in elements.
pub const SPACC_ROW_CAP_RESET: u32 = 4096;

/// Builds an `scfgwi`/`scfgri` address from a register and lane index.
#[must_use]
pub fn cfg_addr(register: u16, lane: u8) -> u16 {
    (register << 5) | u16::from(lane & 0x1F)
}

/// Splits an `scfg` address into `(register, lane)`.
#[must_use]
pub fn split_addr(addr: u16) -> (u16, u8) {
    (addr >> 5, (addr & 0x1F) as u8)
}

/// The shadow configuration a core writes before launching a job.
#[derive(Clone, Copy, Debug)]
pub struct CfgShadow {
    /// Element repetition count.
    pub repeat: u32,
    /// Loop bounds minus one.
    pub bounds: [u32; MAX_DIMS],
    /// Relative byte strides.
    pub strides: [i32; MAX_DIMS],
    /// Raw indirection configuration word.
    pub idx_cfg: u32,
    /// Data base address for indirection (A-side values for joiner jobs).
    pub data_base: u32,
    /// Raw joiner configuration word.
    pub join_cfg: u32,
    /// B-side index array base address for joiner jobs.
    pub join_idx_b: u32,
    /// B-side value array base address for joiner jobs.
    pub join_data_b: u32,
    /// A-side element count for joiner jobs.
    pub join_nnz_a: u32,
    /// B-side element count for joiner jobs.
    pub join_nnz_b: u32,
    /// Raw sparse-accumulator configuration word.
    pub acc_cfg: u32,
    /// Element count of the next SpAcc feed job.
    pub acc_count: u32,
    /// Value output base of the next SpAcc drain.
    pub acc_val_out: u32,
    /// SpAcc row-buffer capacity in elements.
    pub acc_buf_cap: u32,
}

impl Default for CfgShadow {
    fn default() -> Self {
        Self {
            repeat: 0,
            bounds: [0; MAX_DIMS],
            strides: [0; MAX_DIMS],
            idx_cfg: 0,
            data_base: 0,
            join_cfg: 0,
            join_idx_b: 0,
            join_data_b: 0,
            join_nnz_a: 0,
            join_nnz_b: 0,
            acc_cfg: 0,
            acc_count: 0,
            acc_val_out: 0,
            acc_buf_cap: SPACC_ROW_CAP_RESET,
        }
    }
}

impl CfgShadow {
    /// Whether indirection mode is enabled.
    #[must_use]
    pub fn indirect(&self) -> bool {
        self.idx_cfg & 1 != 0
    }

    /// Configured index width.
    #[must_use]
    pub fn index_size(&self) -> IndexSize {
        if self.idx_cfg & 2 != 0 {
            IndexSize::U32
        } else {
            IndexSize::U16
        }
    }

    /// Extra index shift (beyond the static `<< 3` serving doubles).
    #[must_use]
    pub fn index_shift(&self) -> u32 {
        (self.idx_cfg >> 4) & 0xF
    }

    /// Whether the next pointer write launches a joiner job.
    #[must_use]
    pub fn join_enabled(&self) -> bool {
        self.join_cfg & 1 != 0
    }

    /// Configured joiner matching mode.
    #[must_use]
    pub fn join_mode(&self) -> JoinerMode {
        match (self.join_cfg >> 1) & 3 {
            0 => JoinerMode::Intersect,
            1 => JoinerMode::Union,
            _ => JoinerMode::GatherA,
        }
    }

    /// Configured joiner index width (both streams share it).
    #[must_use]
    pub fn join_index_size(&self) -> IndexSize {
        if self.join_cfg & 8 != 0 {
            IndexSize::U32
        } else {
            IndexSize::U16
        }
    }

    /// Whether the joiner runs in count-only mode: the merge executes
    /// without fetching or emitting values, leaving the emission count
    /// in `JOIN_COUNT` (the length-prefix handshake for data-dependent
    /// trip counts).
    #[must_use]
    pub fn join_count_only(&self) -> bool {
        self.join_cfg & 0x10 != 0
    }

    /// Configured sparse-accumulator index width.
    #[must_use]
    pub fn acc_index_size(&self) -> IndexSize {
        if self.acc_cfg & 1 != 0 {
            IndexSize::U32
        } else {
            IndexSize::U16
        }
    }

    /// Whether the sparse accumulator runs in count-only mode: feeds
    /// merge their index stream into the row buffer without consuming
    /// the write stream, so `ACC_NNZ` reports the row's nonzero count
    /// without materializing values — the on-device symbolic phase.
    #[must_use]
    pub fn acc_count_only(&self) -> bool {
        self.acc_cfg & 2 != 0
    }

    /// Reads a shadow register (the value `scfgri` returns).
    #[must_use]
    pub fn read(&self, register: u16) -> u32 {
        match register {
            reg::REPEAT => self.repeat,
            r if reg::BOUNDS.contains(&r) => self.bounds[(r - reg::BOUNDS[0]) as usize],
            r if reg::STRIDES.contains(&r) => self.strides[(r - reg::STRIDES[0]) as usize] as u32,
            reg::IDX_CFG => self.idx_cfg,
            reg::DATA_BASE => self.data_base,
            reg::JOIN_CFG => self.join_cfg,
            reg::JOIN_IDX_B => self.join_idx_b,
            reg::JOIN_DATA_B => self.join_data_b,
            reg::JOIN_NNZ_A => self.join_nnz_a,
            reg::JOIN_NNZ_B => self.join_nnz_b,
            reg::ACC_CFG => self.acc_cfg,
            reg::ACC_COUNT => self.acc_count,
            reg::ACC_VAL_OUT => self.acc_val_out,
            reg::ACC_BUF_CAP => self.acc_buf_cap,
            _ => 0,
        }
    }

    /// Writes a shadow register. Pointer registers are handled by the
    /// lane (they launch jobs); everything else lands here.
    pub fn write(&mut self, register: u16, value: u32) {
        match register {
            reg::REPEAT => self.repeat = value,
            r if reg::BOUNDS.contains(&r) => {
                self.bounds[(r - reg::BOUNDS[0]) as usize] = value;
            }
            r if reg::STRIDES.contains(&r) => {
                self.strides[(r - reg::STRIDES[0]) as usize] = value as i32;
            }
            reg::IDX_CFG => self.idx_cfg = value,
            reg::DATA_BASE => self.data_base = value,
            reg::JOIN_CFG => self.join_cfg = value,
            reg::JOIN_IDX_B => self.join_idx_b = value,
            reg::JOIN_DATA_B => self.join_data_b = value,
            reg::JOIN_NNZ_A => self.join_nnz_a = value,
            reg::JOIN_NNZ_B => self.join_nnz_b = value,
            reg::ACC_CFG => self.acc_cfg = value,
            reg::ACC_COUNT => self.acc_count = value,
            reg::ACC_VAL_OUT => self.acc_val_out = value,
            reg::ACC_BUF_CAP => self.acc_buf_cap = value,
            _ => {}
        }
    }
}

/// Whether a job streams from memory to the register file or back.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobKind {
    /// Memory → register (gather / unit-stride load stream).
    Read,
    /// Register → memory (scatter / unit-stride store stream).
    Write,
}

/// The address pattern of a job.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// SSR-style affine loop nest.
    Affine {
        /// Data pointer the job was launched with.
        base: u32,
        /// Number of active dimensions.
        dims: usize,
        /// Bounds minus one.
        bounds: [u32; MAX_DIMS],
        /// Relative byte strides.
        strides: [i64; MAX_DIMS],
    },
    /// ISSR streaming indirection: `data_base + (idx << (3 + shift))`.
    Indirect {
        /// Index array byte address (any index-aligned address).
        idx_base: u32,
        /// Index width.
        idx_size: IndexSize,
        /// Extra shift for power-of-two-strided higher axes.
        shift: u32,
        /// Dense operand base address.
        data_base: u32,
        /// Number of elements to stream.
        count: u64,
    },
}

/// A fully-specified streaming job, decoded from the shadow registers at
/// pointer-write time.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Read or write stream.
    pub kind: JobKind,
    /// Each datum is delivered `repeat + 1` times (read jobs only).
    pub repeat: u32,
    /// The address pattern.
    pub pattern: Pattern,
}

impl JobSpec {
    /// Decodes a job from the shadow state and a pointer write.
    #[must_use]
    pub fn from_shadow(shadow: &CfgShadow, kind: JobKind, dims: usize, pointer: u32) -> Self {
        let pattern = if shadow.indirect() {
            Pattern::Indirect {
                idx_base: pointer,
                idx_size: shadow.index_size(),
                shift: shadow.index_shift(),
                data_base: shadow.data_base,
                count: u64::from(shadow.bounds[0]) + 1,
            }
        } else {
            let mut strides = [0i64; MAX_DIMS];
            for (dst, &src) in strides.iter_mut().zip(shadow.strides.iter()) {
                *dst = i64::from(src);
            }
            Pattern::Affine { base: pointer, dims, bounds: shadow.bounds, strides }
        };
        JobSpec { kind, repeat: shadow.repeat, pattern }
    }

    /// Total number of elements the FPU side will see.
    #[must_use]
    pub fn total_elements(&self) -> u64 {
        let raw = match &self.pattern {
            Pattern::Affine { dims, bounds, .. } => {
                (0..*dims).map(|d| u64::from(bounds[d]) + 1).product()
            }
            Pattern::Indirect { count, .. } => *count,
        };
        raw * (u64::from(self.repeat) + 1)
    }
}

/// Matching mode of an index-joiner job (the sparse-sparse extension of
/// the SSSR follow-up, arXiv:2305.05559).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JoinerMode {
    /// Emit a pair only where both index streams carry the index.
    Intersect,
    /// Emit a pair for every index in either stream; the absent side is
    /// zero-filled.
    Union,
    /// Emit one pair per A-side index (in order); the B side delivers
    /// its matching value or zero. The emission count equals the A-side
    /// length, which keeps sparse-sparse FREP trip counts static.
    GatherA,
}

impl JoinerMode {
    /// All modes in presentation order.
    pub const ALL: [JoinerMode; 3] =
        [JoinerMode::Intersect, JoinerMode::Union, JoinerMode::GatherA];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JoinerMode::Intersect => "intersect",
            JoinerMode::Union => "union",
            JoinerMode::GatherA => "gather-a",
        }
    }
}

impl std::fmt::Display for JoinerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully-specified index-joiner job, decoded from the shadow registers
/// at pointer-write time (the pointer carries the A-side index array).
#[derive(Clone, Copy, Debug)]
pub struct JoinerSpec {
    /// Matching mode.
    pub mode: JoinerMode,
    /// Index width shared by both streams.
    pub idx_size: IndexSize,
    /// Count-only mode: run the merge without value traffic, leaving the
    /// emission count in `JOIN_COUNT`.
    pub count_only: bool,
    /// A-side index array byte address.
    pub idx_a: u32,
    /// A-side value array base address.
    pub vals_a: u32,
    /// A-side element count (may be zero).
    pub count_a: u64,
    /// B-side index array byte address.
    pub idx_b: u32,
    /// B-side value array base address.
    pub vals_b: u32,
    /// B-side element count (may be zero).
    pub count_b: u64,
}

impl JoinerSpec {
    /// Decodes a joiner job from the shadow state and a pointer write.
    #[must_use]
    pub fn from_shadow(shadow: &CfgShadow, idx_a: u32) -> Self {
        Self {
            mode: shadow.join_mode(),
            idx_size: shadow.join_index_size(),
            count_only: shadow.join_count_only(),
            idx_a,
            vals_a: shadow.data_base,
            count_a: u64::from(shadow.join_nnz_a),
            idx_b: shadow.join_idx_b,
            vals_b: shadow.join_data_b,
            count_b: u64::from(shadow.join_nnz_b),
        }
    }
}

/// A fully-specified SpAcc *feed* job, decoded from the shadow registers
/// at `ACC_FEED` write time (the pointer carries the input index array).
/// The job consumes `count` indices from memory and pairs them, in
/// order, with `count` values pushed into the SpAcc lane's write stream.
#[derive(Clone, Copy, Debug)]
pub struct AccFeedSpec {
    /// Input index array byte address (element aligned).
    pub idx_base: u32,
    /// Number of (index, value) pairs to merge (may be zero).
    pub count: u64,
    /// Index width.
    pub idx_size: IndexSize,
    /// Count-only (symbolic) feed: indices merge into the row buffer but
    /// no values are consumed from the write stream.
    pub count_only: bool,
    /// Row-buffer capacity in elements (nonzero; the streamer faults
    /// zero-capacity launches before they reach the unit).
    pub cap: u32,
}

impl AccFeedSpec {
    /// Decodes a feed job from the shadow state and the pointer write.
    #[must_use]
    pub fn from_shadow(shadow: &CfgShadow, idx_base: u32) -> Self {
        Self {
            idx_base,
            count: u64::from(shadow.acc_count),
            idx_size: shadow.acc_index_size(),
            count_only: shadow.acc_count_only(),
            cap: shadow.acc_buf_cap,
        }
    }
}

/// A fully-specified SpAcc *drain* job, decoded at `ACC_DRAIN` write
/// time (the pointer carries the output index array address).
#[derive(Clone, Copy, Debug)]
pub struct AccDrainSpec {
    /// Output index array byte address (element aligned; word alignment
    /// not required — partial words are written with byte strobes).
    pub idx_out: u32,
    /// Output value array base address (8-aligned).
    pub val_out: u32,
    /// Index width.
    pub idx_size: IndexSize,
}

impl AccDrainSpec {
    /// Decodes a drain job from the shadow state and the pointer write.
    #[must_use]
    pub fn from_shadow(shadow: &CfgShadow, idx_out: u32) -> Self {
        Self { idx_out, val_out: shadow.acc_val_out, idx_size: shadow.acc_index_size() }
    }
}

/// Encodes the `JOIN_CFG` register value.
#[must_use]
pub fn join_cfg_word(mode: JoinerMode, size: IndexSize) -> u32 {
    let mode_bits = match mode {
        JoinerMode::Intersect => 0,
        JoinerMode::Union => 1,
        JoinerMode::GatherA => 2,
    };
    let size_bit = match size {
        IndexSize::U16 => 0,
        IndexSize::U32 => 8,
    };
    1 | (mode_bits << 1) | size_bit
}

/// Encodes the `JOIN_CFG` register value for a count-only job: the
/// merge runs without value traffic and `JOIN_COUNT` reports how many
/// pairs a real job would emit — the length-prefix handshake that turns
/// `Intersect`'s data-dependent output into a static FREP trip count.
#[must_use]
pub fn join_count_cfg_word(mode: JoinerMode, size: IndexSize) -> u32 {
    join_cfg_word(mode, size) | 0x10
}

/// Encodes the `ACC_CFG` register value.
#[must_use]
pub fn acc_cfg_word(size: IndexSize) -> u32 {
    match size {
        IndexSize::U16 => 0,
        IndexSize::U32 => 1,
    }
}

/// Encodes the `ACC_CFG` register value for count-only (symbolic) feeds:
/// the merge runs over the index stream alone and `ACC_NNZ` reports the
/// data-dependent row length without any value traffic — the SpAcc's
/// mirror of [`join_count_cfg_word`]. Launching a drain in this mode is
/// a configuration fault.
#[must_use]
pub fn acc_count_cfg_word(size: IndexSize) -> u32 {
    acc_cfg_word(size) | 2
}

/// Encodes the `IDX_CFG` register value.
#[must_use]
pub fn idx_cfg_word(size: IndexSize, shift: u32) -> u32 {
    let size_bit = match size {
        IndexSize::U16 => 0,
        IndexSize::U32 => 2,
    };
    1 | size_bit | ((shift & 0xF) << 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_packing_round_trips() {
        let addr = cfg_addr(reg::RPTR[0], 1);
        assert_eq!(split_addr(addr), (reg::RPTR[0], 1));
        assert_eq!(split_addr(cfg_addr(reg::STATUS, 0)), (reg::STATUS, 0));
    }

    #[test]
    fn shadow_read_write_round_trip() {
        let mut s = CfgShadow::default();
        s.write(reg::REPEAT, 3);
        s.write(reg::BOUNDS[0], 99);
        s.write(reg::BOUNDS[2], 7);
        s.write(reg::STRIDES[0], 8);
        s.write(reg::STRIDES[1], (-16i32) as u32);
        s.write(reg::IDX_CFG, idx_cfg_word(IndexSize::U32, 2));
        s.write(reg::DATA_BASE, 0x0010_4000);
        assert_eq!(s.read(reg::REPEAT), 3);
        assert_eq!(s.read(reg::BOUNDS[0]), 99);
        assert_eq!(s.read(reg::BOUNDS[2]), 7);
        assert_eq!(s.read(reg::STRIDES[0]), 8);
        assert_eq!(s.read(reg::STRIDES[1]) as i32, -16);
        assert!(s.indirect());
        assert_eq!(s.index_size(), IndexSize::U32);
        assert_eq!(s.index_shift(), 2);
        assert_eq!(s.read(reg::DATA_BASE), 0x0010_4000);
    }

    #[test]
    fn affine_job_decode() {
        let mut s = CfgShadow::default();
        s.write(reg::BOUNDS[0], 9);
        s.write(reg::STRIDES[0], 8);
        let job = JobSpec::from_shadow(&s, JobKind::Read, 1, 0x0010_0000);
        assert_eq!(job.total_elements(), 10);
        match job.pattern {
            Pattern::Affine { base, dims, .. } => {
                assert_eq!(base, 0x0010_0000);
                assert_eq!(dims, 1);
            }
            Pattern::Indirect { .. } => panic!("expected affine"),
        }
    }

    #[test]
    fn indirect_job_decode() {
        let mut s = CfgShadow::default();
        s.write(reg::BOUNDS[0], 15);
        s.write(reg::IDX_CFG, idx_cfg_word(IndexSize::U16, 0));
        s.write(reg::DATA_BASE, 0x0010_8000);
        let job = JobSpec::from_shadow(&s, JobKind::Read, 1, 0x0010_0002);
        match job.pattern {
            Pattern::Indirect { idx_base, idx_size, data_base, count, shift } => {
                assert_eq!(idx_base, 0x0010_0002);
                assert_eq!(idx_size, IndexSize::U16);
                assert_eq!(data_base, 0x0010_8000);
                assert_eq!(count, 16);
                assert_eq!(shift, 0);
            }
            Pattern::Affine { .. } => panic!("expected indirect"),
        }
    }

    #[test]
    fn joiner_cfg_word_round_trips() {
        for mode in JoinerMode::ALL {
            for size in [IndexSize::U16, IndexSize::U32] {
                let mut s = CfgShadow::default();
                s.write(reg::JOIN_CFG, join_cfg_word(mode, size));
                assert!(s.join_enabled());
                assert_eq!(s.join_mode(), mode);
                assert_eq!(s.join_index_size(), size);
            }
        }
        assert!(!CfgShadow::default().join_enabled());
    }

    #[test]
    fn joiner_job_decode() {
        let mut s = CfgShadow::default();
        s.write(reg::JOIN_CFG, join_cfg_word(JoinerMode::GatherA, IndexSize::U16));
        s.write(reg::DATA_BASE, 0x0010_1000);
        s.write(reg::JOIN_IDX_B, 0x0010_2000);
        s.write(reg::JOIN_DATA_B, 0x0010_3000);
        s.write(reg::JOIN_NNZ_A, 5);
        s.write(reg::JOIN_NNZ_B, 0);
        assert_eq!(s.read(reg::JOIN_IDX_B), 0x0010_2000);
        assert_eq!(s.read(reg::JOIN_NNZ_A), 5);
        let spec = JoinerSpec::from_shadow(&s, 0x0010_0800);
        assert_eq!(spec.mode, JoinerMode::GatherA);
        assert_eq!(spec.idx_size, IndexSize::U16);
        assert_eq!(spec.idx_a, 0x0010_0800);
        assert_eq!(spec.vals_a, 0x0010_1000);
        assert_eq!(spec.count_a, 5);
        assert_eq!(spec.idx_b, 0x0010_2000);
        assert_eq!(spec.vals_b, 0x0010_3000);
        assert_eq!(spec.count_b, 0);
    }

    #[test]
    fn count_only_joiner_cfg_round_trips() {
        let mut s = CfgShadow::default();
        s.write(reg::JOIN_CFG, join_count_cfg_word(JoinerMode::Intersect, IndexSize::U32));
        assert!(s.join_enabled());
        assert!(s.join_count_only());
        assert_eq!(s.join_mode(), JoinerMode::Intersect);
        assert_eq!(s.join_index_size(), IndexSize::U32);
        let spec = JoinerSpec::from_shadow(&s, 0);
        assert!(spec.count_only);
        s.write(reg::JOIN_CFG, join_cfg_word(JoinerMode::Intersect, IndexSize::U32));
        assert!(!s.join_count_only());
    }

    #[test]
    fn spacc_job_decode() {
        let mut s = CfgShadow::default();
        s.write(reg::ACC_CFG, acc_cfg_word(IndexSize::U32));
        s.write(reg::ACC_COUNT, 17);
        s.write(reg::ACC_VAL_OUT, 0x0030_8000);
        assert_eq!(s.read(reg::ACC_COUNT), 17);
        assert_eq!(s.acc_index_size(), IndexSize::U32);
        let feed = AccFeedSpec::from_shadow(&s, 0x0030_1004);
        assert_eq!(feed.idx_base, 0x0030_1004);
        assert_eq!(feed.count, 17);
        assert_eq!(feed.idx_size, IndexSize::U32);
        assert!(!feed.count_only);
        assert_eq!(feed.cap, SPACC_ROW_CAP_RESET);
        let drain = AccDrainSpec::from_shadow(&s, 0x0030_4002);
        assert_eq!(drain.idx_out, 0x0030_4002);
        assert_eq!(drain.val_out, 0x0030_8000);
        assert_eq!(drain.idx_size, IndexSize::U32);
        assert_eq!(CfgShadow::default().acc_index_size(), IndexSize::U16);
    }

    #[test]
    fn count_only_acc_cfg_round_trips() {
        let mut s = CfgShadow::default();
        assert!(!s.acc_count_only());
        s.write(reg::ACC_CFG, acc_count_cfg_word(IndexSize::U32));
        assert!(s.acc_count_only());
        assert_eq!(s.acc_index_size(), IndexSize::U32);
        let feed = AccFeedSpec::from_shadow(&s, 0);
        assert!(feed.count_only);
        s.write(reg::ACC_CFG, acc_cfg_word(IndexSize::U32));
        assert!(!s.acc_count_only());
        // The capacity register resets nonzero and round-trips.
        assert_eq!(s.read(reg::ACC_BUF_CAP), SPACC_ROW_CAP_RESET);
        s.write(reg::ACC_BUF_CAP, 9);
        assert_eq!(AccFeedSpec::from_shadow(&s, 0).cap, 9);
    }

    #[test]
    fn repeat_scales_elements() {
        let mut s = CfgShadow::default();
        s.write(reg::BOUNDS[0], 4);
        s.write(reg::REPEAT, 2);
        let job = JobSpec::from_shadow(&s, JobKind::Read, 1, 0);
        assert_eq!(job.total_elements(), 15);
    }
}
