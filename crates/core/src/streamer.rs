//! The streamer: the set of SSR/ISSR lanes multiplexed into the FPU
//! register file (Fig. 2).
//!
//! The paper's area-optimized configuration provides one plain SSR
//! (mapped to `ft0`) and one ISSR (mapped to `ft1`), each with a private
//! memory port; [`Streamer::paper_config`] builds exactly that. Other
//! mixes (e.g. two ISSRs for codebook-compressed sparse values, §III-C)
//! are expressed by constructing with a different lane list.
//!
//! While the `ssr` CSR bit is set, floating-point register indices below
//! the lane count read/write the streams instead of the register file —
//! the *register redirection* the kernels toggle around their compute
//! loops.
//!
//! A streamer built with [`Streamer::with_joiner`] additionally carries
//! the sparse-sparse **index joiner** (arXiv:2305.05559). A joiner job
//! is configured through lane 0's shadow registers (`JOIN_*`) and
//! launched by writing lane 0's read pointer with the A-side index
//! array; while it runs it owns the memory ports of lanes 0 and 1 and
//! delivers matched value pairs through those two registers.

use crate::cfg::{reg, AccDrainSpec, AccFeedSpec, JoinerSpec};
use crate::cfg_check::{self, HwCaps};
use crate::fault::{StreamFault, StreamFaultKind, StreamUnit, STREAM_WATCHDOG_RESET};
use crate::joiner::{IndexJoiner, JoinerStats};
use crate::lane::{Lane, LaneKind, LaneStats};
use crate::spacc::{SpAcc, SpAccStats, SPACC_LANE};
use issr_mem::port::MemPort;
use issr_trace::StallCause;

/// One cycle's stall-cause classification of every stream unit, read
/// after [`Streamer::tick`] by the core-complex attribution sampler.
/// Pure state readout: taking a probe never changes timing.
#[derive(Clone, Debug)]
pub struct StreamerProbe {
    /// Per-lane causes, indexed like the lanes (`ft0`, `ft1`, ...).
    pub lanes: Vec<StallCause>,
    /// The index joiner's cause ([`StallCause::Idle`] when absent).
    pub joiner: StallCause,
    /// The sparse accumulator's cause ([`StallCause::Idle`] when absent).
    pub spacc: StallCause,
}

impl Default for StreamerProbe {
    fn default() -> Self {
        Self { lanes: Vec::new(), joiner: StallCause::Idle, spacc: StallCause::Idle }
    }
}

// The fault type and its validation predicates live in
// [`crate::cfg_check`], shared with `issr-lint`; re-exported here for
// the original path's compatibility.
pub use crate::cfg_check::CfgFault;

/// The lane bundle attached to one core's FPU subsystem.
#[derive(Debug)]
pub struct Streamer {
    lanes: Vec<Lane>,
    /// The lane kinds, kept as a flat list so capability checks can
    /// borrow them as a [`HwCaps`] without walking the lanes.
    kinds: Vec<LaneKind>,
    enabled: bool,
    /// Whether the hardware includes the index joiner.
    has_joiner: bool,
    joiner: Option<IndexJoiner>,
    /// One-deep shadow queue for joiner jobs (like a lane's pending slot).
    pending_join: Option<JoinerSpec>,
    joiner_stats: JoinerStats,
    /// Pairs emitted by the most recent completed joiner job.
    join_count_last: u32,
    /// Whether the hardware includes the sparse accumulator.
    has_spacc: bool,
    spacc: SpAcc,
    /// The latched mid-stream fault, if any: the first fault freezes
    /// every stream unit; the core takes it as a trap once.
    fault: Option<StreamFault>,
    /// Whether the latched fault was already handed to the core.
    fault_delivered: bool,
    /// Watchdog threshold applied to newly promoted joiner jobs.
    joiner_watchdog: u64,
}

impl Streamer {
    /// Creates a streamer with the given lane kinds; lane *i* maps to
    /// floating-point register *f_i*.
    ///
    /// # Panics
    /// Panics if no lanes are given or more than 8 (the register-map
    /// window) — a host construction error, not simulator input.
    #[must_use]
    pub fn new(kinds: &[LaneKind]) -> Self {
        // Host construction precondition, not simulator input.
        assert!((1..=8).contains(&kinds.len()), "streamer supports 1..=8 lanes"); // gate-allow
        Self {
            lanes: kinds.iter().map(|&k| Lane::new(k)).collect(),
            kinds: kinds.to_vec(),
            enabled: false,
            has_joiner: false,
            joiner: None,
            pending_join: None,
            joiner_stats: JoinerStats::default(),
            join_count_last: 0,
            has_spacc: false,
            spacc: SpAcc::new(),
            fault: None,
            fault_delivered: false,
            joiner_watchdog: STREAM_WATCHDOG_RESET,
        }
    }

    /// Creates a streamer that also carries the index joiner, which
    /// matches two sparse index streams onto lanes 0 and 1.
    ///
    /// # Panics
    /// Panics if fewer than two lanes are given (the joiner needs both
    /// ports) or more than 8.
    #[must_use]
    pub fn with_joiner(kinds: &[LaneKind]) -> Self {
        // Host construction precondition, not simulator input.
        assert!(kinds.len() >= 2, "the index joiner spans lanes 0 and 1"); // gate-allow
        let mut s = Self::new(kinds);
        s.has_joiner = true;
        s
    }

    /// The paper's evaluated configuration: one SSR (`ft0`) and one ISSR
    /// (`ft1`).
    #[must_use]
    pub fn paper_config() -> Self {
        Self::new(&[LaneKind::Ssr, LaneKind::Issr])
    }

    /// Creates a streamer that also carries the sparse accumulator (the
    /// write-stream side), which borrows lane 1's port and write stream.
    ///
    /// # Panics
    /// Panics if fewer than two lanes are given or more than 8.
    #[must_use]
    pub fn with_spacc(kinds: &[LaneKind]) -> Self {
        // Host construction precondition, not simulator input.
        assert!(kinds.len() > SPACC_LANE, "the sparse accumulator sits on lane 1"); // gate-allow
        let mut s = Self::new(kinds);
        s.has_spacc = true;
        s
    }

    /// The sparse-sparse configuration: the paper's two lanes plus the
    /// SSSR-style index joiner across them and the SpAcc write-stream
    /// sparse accumulator on lane 1 — sparse reads *and* sparse writes.
    #[must_use]
    pub fn sssr_config() -> Self {
        let mut s = Self::with_spacc(&[LaneKind::Ssr, LaneKind::Issr]);
        s.has_joiner = true;
        s
    }

    /// Whether the hardware includes the index joiner.
    #[must_use]
    pub fn has_joiner(&self) -> bool {
        self.has_joiner
    }

    /// Whether the hardware includes the sparse accumulator.
    #[must_use]
    pub fn has_spacc(&self) -> bool {
        self.has_spacc
    }

    /// The hardware capability set configuration accesses are validated
    /// against — the same view `issr-lint` checks statically.
    #[must_use]
    pub fn caps(&self) -> HwCaps<'_> {
        HwCaps { lanes: &self.kinds, has_joiner: self.has_joiner, has_spacc: self.has_spacc }
    }

    /// Selects single- or double-buffered SpAcc row storage (see
    /// [`SpAcc::set_double_buffered`]).
    pub fn set_spacc_double_buffered(&mut self, enabled: bool) {
        self.spacc.set_double_buffered(enabled);
    }

    /// Sets the SpAcc progress-watchdog threshold (tests shrink it;
    /// resets to [`STREAM_WATCHDOG_RESET`]).
    pub fn set_spacc_watchdog(&mut self, cycles: u64) {
        self.spacc.set_watchdog(cycles);
    }

    /// Sets the joiner progress-watchdog threshold, applied to the
    /// running job and every job promoted after this call.
    pub fn set_joiner_watchdog(&mut self, cycles: u64) {
        self.joiner_watchdog = cycles.max(1);
        if let Some(joiner) = &mut self.joiner {
            joiner.set_watchdog(cycles);
        }
    }

    /// The latched mid-stream fault, if any stream unit froze on one.
    #[must_use]
    pub fn stream_fault(&self) -> Option<StreamFault> {
        self.fault
    }

    /// Hands the latched mid-stream fault to the core exactly once (the
    /// core-complex delivery path: the core parks on the trap and the
    /// FPU subsystem squashes). Later calls return `None`; the fault
    /// itself stays latched and the streamer stays frozen.
    pub fn take_stream_fault(&mut self) -> Option<StreamFault> {
        if self.fault_delivered {
            return None;
        }
        let fault = self.fault?;
        self.fault_delivered = true;
        Some(fault)
    }

    /// Latches the first mid-stream fault and freezes every stream
    /// unit: lanes stop issuing and drain, the joiner's merge stops,
    /// the SpAcc aborts to its row-buffer checkpoint. In-flight memory
    /// responses drain over the following cycles so the ports settle.
    fn latch_stream_fault(&mut self, unit: StreamUnit, kind: StreamFaultKind) {
        if self.fault.is_some() {
            return;
        }
        self.fault = Some(StreamFault { unit, kind });
        for lane in &mut self.lanes {
            lane.freeze();
        }
        if let Some(joiner) = &mut self.joiner {
            joiner.freeze();
        }
        self.pending_join = None;
        self.spacc.freeze();
    }

    /// Whether `lane`'s *read* stream has terminated: no read job is
    /// running or queued, nothing is in flight, every delivered value
    /// has been consumed, and — for lanes 0/1 — no joiner job is active
    /// or pending (the joiner injects into those lanes). This is the
    /// `done` signal the FREP sequencer's stream-terminated loops
    /// (`frep.s`) poll to end a data-dependent loop without a
    /// pre-counted trip.
    #[must_use]
    pub fn read_stream_terminated(&self, lane: usize) -> bool {
        if lane <= 1 && (self.joiner.is_some() || self.pending_join.is_some()) {
            return false;
        }
        self.lanes[lane].read_stream_done()
    }

    /// Number of lanes.
    #[must_use]
    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Sets the register-redirection enable (the `ssr` CSR bit).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether register redirection is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The lane a floating-point register redirects to, if any.
    #[must_use]
    pub fn lane_of_reg(&self, fp_reg: u8) -> Option<usize> {
        if self.enabled && (fp_reg as usize) < self.lanes.len() {
            Some(fp_reg as usize)
        } else {
            None
        }
    }

    /// Immutable lane access.
    #[must_use]
    pub fn lane(&self, index: usize) -> &Lane {
        &self.lanes[index]
    }

    /// Mutable lane access (register-file side uses this to pop/push).
    pub fn lane_mut(&mut self, index: usize) -> &mut Lane {
        &mut self.lanes[index]
    }

    /// Configuration write from the core (`scfgwi`); the 12-bit address is
    /// `reg << 5 | lane`. Returns `Ok(false)` if the lane cannot accept
    /// the write this cycle (job queue full — the core retries) and
    /// `Err` for a malformed access the core latches as a trap.
    ///
    /// A read-pointer write to lane 0 with `JOIN_CFG` enabled launches a
    /// **joiner job** across lanes 0 and 1 instead of a lane job.
    ///
    /// # Errors
    /// Returns a [`CfgFault`] for accesses the hardware cannot execute:
    /// a nonexistent lane, a joiner/SpAcc launch without that hardware,
    /// a zero-capacity feed, or a drain in count-only mode.
    pub fn cfg_write(&mut self, addr: u16, value: u32) -> Result<bool, CfgFault> {
        let (register, lane) = crate::cfg::split_addr(addr);
        self.caps().check_lane(lane)?;
        let lane = lane as usize;
        if cfg_check::is_joiner_launch(register, lane as u8, self.lanes[0].shadow()) {
            self.caps().check_joiner_present()?;
            if self.pending_join.is_some() {
                return Ok(false);
            }
            self.pending_join = Some(JoinerSpec::from_shadow(self.lanes[0].shadow(), value));
            self.promote_join();
            return Ok(true);
        }
        if lane == 0 && register == reg::ACC_FEED {
            let spec = AccFeedSpec::from_shadow(self.lanes[0].shadow(), value);
            self.caps().check_feed(&spec)?;
            return Ok(self.spacc.launch_feed(spec));
        }
        if lane == 0 && register == reg::ACC_DRAIN {
            let spec = AccDrainSpec::from_shadow(self.lanes[0].shadow(), value);
            self.caps().check_drain(self.lanes[0].shadow().acc_count_only(), &spec)?;
            return Ok(self.spacc.launch_drain(spec));
        }
        if lane == 0 && register == reg::ACC_CLEAR {
            self.caps().check_spacc_present()?;
            return Ok(self.spacc.clear());
        }
        // Launch-time capability checks: a pointer write decodes
        // against the lane's shadow, and malformed combinations fault
        // here (the lane itself only debug-asserts them). Lane 0's
        // RPTR[0] joiner launch was dispatched above.
        if cfg_check::is_pointer_reg(register) {
            self.caps().check_pointer_write(self.lanes[lane].shadow(), lane as u8)?;
        }
        Ok(self.lanes[lane].cfg_write(register, value))
    }

    /// Configuration read from the core (`scfgri`).
    ///
    /// # Errors
    /// Returns [`CfgFault::BadLane`] for a nonexistent lane, and
    /// [`CfgFault::NoJoiner`]/[`CfgFault::NoSpAcc`] for joiner/SpAcc
    /// readbacks on a streamer without that hardware — a kernel
    /// mis-targeted at a plain core faults instead of spinning on
    /// absent status bits.
    pub fn cfg_read(&self, addr: u16) -> Result<u32, CfgFault> {
        let (register, lane) = crate::cfg::split_addr(addr);
        self.caps().check_lane(lane)?;
        let lane = lane as usize;
        if lane == 0 && register == reg::JOIN_COUNT {
            self.caps().check_joiner_present()?;
            return Ok(self.join_count_last);
        }
        if lane == 0 && register == reg::ACC_NNZ {
            self.caps().check_spacc_present()?;
            return Ok(u32::try_from(self.spacc.nnz()).expect("row buffer exceeds u32"));
        }
        if lane == 0 && register == reg::ACC_STATUS {
            self.caps().check_spacc_present()?;
            let done = self.spacc.is_idle();
            let feeds_done = self.spacc.feeds_idle();
            return Ok(u32::from(done) | (u32::from(!done) << 1) | (u32::from(feeds_done) << 2));
        }
        if lane == 0 && register == reg::STATUS {
            let done =
                self.lanes[0].is_idle() && self.joiner.is_none() && self.pending_join.is_none();
            return Ok(u32::from(done) | (u32::from(!done) << 1));
        }
        Ok(self.lanes[lane].cfg_read(register))
    }

    /// Starts the queued joiner job once the previous one retired and
    /// lanes 0/1 have released their ports.
    fn promote_join(&mut self) {
        if self.joiner.is_some() || self.pending_join.is_none() {
            return;
        }
        if self.lanes[0].is_streaming() || self.lanes[1].is_streaming() {
            return;
        }
        let spec = self.pending_join.take().expect("checked above");
        let mut joiner = IndexJoiner::new(&spec);
        joiner.set_watchdog(self.joiner_watchdog);
        self.joiner = Some(joiner);
    }

    /// Advances all lanes one cycle; `first` is lane 0's memory port,
    /// `rest[i]` is lane *i+1*'s. (The split mirrors the physical
    /// topology — lane 0 rides the core's shared port, further lanes
    /// own exclusive ports — and keeps the hot tick free of a
    /// per-cycle port-reference collection.) An active joiner job runs
    /// on the ports of lanes 0 and 1 and delivers matched pairs into
    /// those lanes' FIFOs; an active SpAcc job runs on lane 1's port
    /// and consumes its write stream.
    ///
    /// Mid-stream failures — a lane job launched on a port the joiner
    /// or SpAcc owns, a joiner overlapping an active SpAcc job, or a
    /// fault latched inside a unit (overflow, unsorted feed, stall
    /// watchdog) — latch a [`StreamFault`] and freeze the streamer
    /// instead of panicking; the frozen units drain their in-flight
    /// traffic and the streamer settles to idle.
    pub fn tick(&mut self, now: u64, first: &mut MemPort, rest: &mut [MemPort]) {
        debug_assert_eq!(rest.len() + 1, self.lanes.len(), "one port per lane");
        if self.fault.is_none() {
            self.detect_port_conflicts();
        }
        if self.fault.is_some() {
            self.tick_frozen(now, first, rest);
            return;
        }
        if self.spacc.busy() {
            self.spacc.tick(now, &mut rest[SPACC_LANE - 1], &mut self.lanes[SPACC_LANE]);
            if let Some(kind) = self.spacc.fault() {
                self.latch_stream_fault(StreamUnit::SpAcc, kind);
                return;
            }
        }
        self.promote_join();
        if let Some(joiner) = &mut self.joiner {
            joiner.tick(now, first, &mut rest[0]);
            while joiner.a_ready() && self.lanes[0].can_push() {
                let value = joiner.pop_a();
                self.lanes[0].inject(value);
            }
            while joiner.b_ready() && self.lanes[1].can_push() {
                let value = joiner.pop_b();
                self.lanes[1].inject(value);
            }
            if let Some(kind) = joiner.fault() {
                self.latch_stream_fault(StreamUnit::Joiner, kind);
                return;
            }
            if joiner.is_done() {
                let stats = joiner.stats();
                self.joiner_stats.merge(&stats);
                self.joiner_stats.jobs += 1;
                self.join_count_last = stats.emissions as u32;
                self.joiner = None;
                self.promote_join();
            }
        }
        let ports = std::iter::once(first).chain(rest.iter_mut());
        for (lane, port) in self.lanes.iter_mut().zip(ports) {
            lane.tick(now, port);
        }
    }

    /// Latches a [`StreamFaultKind::PortConflict`] when two masters
    /// claim one lane port. Detection runs before any lane issues, so
    /// the conflicting newcomer has no traffic in flight yet and the
    /// freeze drains deterministically.
    fn detect_port_conflicts(&mut self) {
        if self.spacc.busy() && self.joiner.is_some() {
            self.latch_stream_fault(StreamUnit::Joiner, StreamFaultKind::PortConflict);
        } else if self.spacc.busy() && self.lanes[SPACC_LANE].is_streaming() {
            self.latch_stream_fault(
                StreamUnit::Lane(SPACC_LANE as u8),
                StreamFaultKind::PortConflict,
            );
        } else if self.joiner.is_some()
            && (self.lanes[0].is_streaming() || self.lanes[1].is_streaming())
        {
            let lane = u8::from(!self.lanes[0].is_streaming());
            self.latch_stream_fault(StreamUnit::Lane(lane), StreamFaultKind::PortConflict);
        }
    }

    /// A frozen cycle: every unit only drains. The joiner keeps lanes
    /// 0/1's ports until its in-flight responses return; the SpAcc
    /// sinks its aborted feed's index responses; lanes drop their jobs
    /// and buffers once their own responses settle.
    fn tick_frozen(&mut self, now: u64, first: &mut MemPort, rest: &mut [MemPort]) {
        if let Some(joiner) = &mut self.joiner {
            joiner.tick(now, &mut *first, &mut rest[0]);
            if joiner.is_done() {
                self.joiner_stats.merge(&joiner.stats());
                self.joiner = None;
            }
        }
        let joiner_active = self.joiner.is_some();
        let spacc = &mut self.spacc;
        let ports = std::iter::once(first).chain(rest.iter_mut());
        for (i, (lane, port)) in self.lanes.iter_mut().zip(ports).enumerate() {
            if joiner_active && i <= 1 {
                continue;
            }
            if i == SPACC_LANE && spacc.sink_pending() {
                spacc.tick(now, port, lane);
            } else {
                lane.tick(now, port);
            }
        }
    }

    /// Whether every lane has fully drained and no joiner or SpAcc job
    /// is active or queued.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.lanes.iter().all(Lane::is_idle)
            && self.joiner.is_none()
            && self.pending_join.is_none()
            && self.spacc.is_idle()
    }

    /// Classifies lane `i`'s current cycle for attribution. Starts from
    /// the lane's own view ([`Lane::attr_cause`]) and applies the two
    /// streamer-level upgrades the lane cannot see:
    ///
    /// * a joiner-fed lane (0/1) with no job of its own is waiting on
    ///   the joiner's merge, not on memory — [`StallCause::JoinerWait`],
    ///   unless matched pairs are already queued for the FPU
    ///   ([`StallCause::Active`]);
    /// * the SpAcc-owned lane while a SpAcc job runs inherits the
    ///   accumulator's cause, since the unit borrowing the port is what
    ///   the lane's cycles are spent on.
    #[must_use]
    pub fn lane_attr_cause(&self, i: usize) -> StallCause {
        let lane = &self.lanes[i];
        let base = lane.attr_cause();
        if matches!(base, StallCause::Parked | StallCause::Active | StallCause::PortConflict) {
            return base;
        }
        if i <= 1 && (self.joiner.is_some() || self.pending_join.is_some()) && !lane.is_streaming()
        {
            return if lane.can_pop() { StallCause::Active } else { StallCause::JoinerWait };
        }
        if i == SPACC_LANE && self.spacc.busy() && !lane.is_streaming() {
            return self.spacc.attr_cause();
        }
        base
    }

    /// One cycle's classification of every stream unit (lanes, joiner,
    /// SpAcc), read after [`Streamer::tick`] by the attribution sampler.
    #[must_use]
    pub fn attr_probe(&self) -> StreamerProbe {
        let mut probe = StreamerProbe::default();
        self.attr_probe_into(&mut probe);
        probe
    }

    /// [`Streamer::attr_probe`] into a caller-owned probe, reusing its
    /// lane buffer — the per-cycle sampler path, kept allocation-free.
    pub fn attr_probe_into(&self, probe: &mut StreamerProbe) {
        probe.joiner = match &self.joiner {
            Some(joiner) => joiner.attr_cause(),
            // A queued job waiting for lanes 0/1 to release their ports
            // is blocked on the port handover, not on input data.
            None if self.pending_join.is_some() => StallCause::PortConflict,
            None => StallCause::Idle,
        };
        probe.spacc = self.spacc.attr_cause();
        probe.lanes.clear();
        probe.lanes.extend((0..self.lanes.len()).map(|i| self.lane_attr_cause(i)));
    }

    /// Per-lane statistics.
    #[must_use]
    pub fn stats(&self) -> Vec<LaneStats> {
        self.lanes.iter().map(|l| l.stats()).collect()
    }

    /// Accumulated joiner statistics (completed jobs).
    #[must_use]
    pub fn joiner_stats(&self) -> JoinerStats {
        self.joiner_stats
    }

    /// Accumulated sparse-accumulator statistics.
    #[must_use]
    pub fn spacc_stats(&self) -> SpAccStats {
        self.spacc.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{cfg_addr, idx_cfg_word, reg, JoinerMode};
    use crate::serializer::IndexSize;
    use issr_mem::tcdm::Tcdm;

    const BASE: u32 = 0x0010_0000;

    #[test]
    fn paper_config_shape() {
        let s = Streamer::paper_config();
        assert_eq!(s.n_lanes(), 2);
        assert_eq!(s.lane(0).kind(), LaneKind::Ssr);
        assert_eq!(s.lane(1).kind(), LaneKind::Issr);
    }

    #[test]
    fn redirection_gated_by_enable() {
        let mut s = Streamer::paper_config();
        assert_eq!(s.lane_of_reg(0), None);
        s.set_enabled(true);
        assert_eq!(s.lane_of_reg(0), Some(0));
        assert_eq!(s.lane_of_reg(1), Some(1));
        assert_eq!(s.lane_of_reg(2), None);
    }

    /// The paper's SpVV data flow: SSR streams the sparse values while
    /// the ISSR gathers dense operands at the sparse indices — both
    /// sustained concurrently on private ports.
    #[test]
    fn concurrent_ssr_and_issr_streams() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let nnz = 40u32;
        let a_vals = BASE;
        let b = BASE + 0x4000;
        let a_idcs = BASE + 0x8000;
        for j in 0..nnz {
            tcdm.array_mut().store_f64(a_vals + j * 8, f64::from(j));
        }
        for i in 0..256u32 {
            tcdm.array_mut().store_f64(b + i * 8, f64::from(i) * 0.5);
        }
        let idcs: Vec<u16> = (0..nnz as u16).map(|j| (j * 13) % 256).collect();
        tcdm.array_mut().store_u16_slice(a_idcs, &idcs);

        let mut s = Streamer::paper_config();
        // ft0: affine over a_vals.
        assert!(s.cfg_write(cfg_addr(reg::BOUNDS[0], 0), nnz - 1).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::STRIDES[0], 0), 8).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::RPTR[0], 0), a_vals).unwrap());
        // ft1: indirect over b at a_idcs.
        assert!(s.cfg_write(cfg_addr(reg::BOUNDS[0], 1), nnz - 1).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::IDX_CFG, 1), idx_cfg_word(IndexSize::U16, 0)).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::DATA_BASE, 1), b).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::RPTR[0], 1), a_idcs).unwrap());
        s.set_enabled(true);

        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        let mut dot = 0.0f64;
        let mut pairs = 0u32;
        let mut cycles = 0u64;
        for now in 0..2000u64 {
            s.tick(now, &mut p0, std::slice::from_mut(&mut p1));
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            if s.lane(0).can_pop() && s.lane(1).can_pop() {
                let a = f64::from_bits(s.lane_mut(0).pop());
                let x = f64::from_bits(s.lane_mut(1).pop());
                dot += a * x;
                pairs += 1;
            }
            cycles = now + 1;
            if pairs == nnz {
                break;
            }
        }
        let expected: f64 =
            (0..nnz).map(|j| f64::from(j) * (f64::from((j * 13) % 256) * 0.5)).sum();
        assert_eq!(dot, expected);
        // Pair rate limited by the ISSR's 4/5 cap, not the SSR.
        let rate = f64::from(pairs) / cycles as f64;
        assert!(rate > 0.7, "pair rate {rate:.3} too low");
        assert!(s.is_idle());
    }

    #[test]
    fn status_readable_over_cfg_interface() {
        let s = Streamer::paper_config();
        assert_eq!(s.cfg_read(cfg_addr(reg::STATUS, 0)).unwrap(), 1);
        assert_eq!(s.cfg_read(cfg_addr(reg::STATUS, 1)).unwrap(), 1);
    }

    #[test]
    fn cfg_access_to_missing_lane_faults() {
        let mut s = Streamer::paper_config();
        assert_eq!(s.cfg_write(cfg_addr(reg::STATUS, 5), 0), Err(CfgFault::BadLane { lane: 5 }));
        assert_eq!(s.cfg_read(cfg_addr(reg::STATUS, 5)), Err(CfgFault::BadLane { lane: 5 }));
    }

    /// Stores the standard sparse-sparse workload used by the joiner
    /// tests: indices at `IDX_*`, values `1000 + pos` / `2000 + pos`.
    fn place_join_workload(tcdm: &mut Tcdm, idcs_a: &[u16], idcs_b: &[u16]) {
        tcdm.array_mut().store_u16_slice(BASE + 0x1000, idcs_a);
        tcdm.array_mut().store_u16_slice(BASE + 0x2000, idcs_b);
        for j in 0..idcs_a.len() as u32 {
            tcdm.array_mut().store_u64(BASE + 0x4000 + j * 8, 1000 + u64::from(j));
        }
        for j in 0..idcs_b.len() as u32 {
            tcdm.array_mut().store_u64(BASE + 0x8000 + j * 8, 2000 + u64::from(j));
        }
    }

    fn configure_join(s: &mut Streamer, mode: JoinerMode, nnz_a: u32, nnz_b: u32) -> bool {
        assert!(s
            .cfg_write(cfg_addr(reg::JOIN_CFG, 0), crate::cfg::join_cfg_word(mode, IndexSize::U16))
            .unwrap());
        assert!(s.cfg_write(cfg_addr(reg::DATA_BASE, 0), BASE + 0x4000).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::JOIN_IDX_B, 0), BASE + 0x2000).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::JOIN_DATA_B, 0), BASE + 0x8000).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::JOIN_NNZ_A, 0), nnz_a).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::JOIN_NNZ_B, 0), nnz_b).unwrap());
        s.cfg_write(cfg_addr(reg::RPTR[0], 0), BASE + 0x1000).unwrap()
    }

    /// A joiner job launched over the configuration interface delivers
    /// matched pairs through lanes 0/1 like ordinary streams.
    #[test]
    fn joiner_job_streams_matched_pairs() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        place_join_workload(&mut tcdm, &[1, 4, 9], &[0, 4, 9, 12]);
        let mut s = Streamer::sssr_config();
        assert!(configure_join(&mut s, JoinerMode::Intersect, 3, 4));
        s.set_enabled(true);
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        let mut pairs = Vec::new();
        for now in 0..2000u64 {
            s.tick(now, &mut p0, std::slice::from_mut(&mut p1));
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            if s.lane(0).can_pop() && s.lane(1).can_pop() {
                pairs.push((s.lane_mut(0).pop(), s.lane_mut(1).pop()));
            }
            if s.is_idle() {
                break;
            }
        }
        // Matches at indices 4 and 9: A positions 1, 2; B positions 1, 2.
        assert_eq!(pairs, [(1001, 2001), (1002, 2002)]);
        assert!(s.is_idle());
        assert_eq!(s.cfg_read(cfg_addr(reg::JOIN_COUNT, 0)).unwrap(), 2);
        assert_eq!(s.joiner_stats().jobs, 1);
        assert_eq!(s.joiner_stats().matches, 2);
    }

    /// Back-to-back joiner jobs: the second launch queues in the shadow
    /// slot while the first drains, and a third is rejected until then.
    #[test]
    fn joiner_jobs_queue_one_deep() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        place_join_workload(&mut tcdm, &[0, 1, 2, 3], &[0, 1, 2, 3]);
        let mut s = Streamer::sssr_config();
        assert!(configure_join(&mut s, JoinerMode::GatherA, 4, 4));
        // Queue a second job (same shadow) and verify a third is refused.
        assert!(s.cfg_write(cfg_addr(reg::RPTR[0], 0), BASE + 0x1000).unwrap());
        assert!(!s.cfg_write(cfg_addr(reg::RPTR[0], 0), BASE + 0x1000).unwrap());
        s.set_enabled(true);
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        let mut pairs = 0;
        for now in 0..4000u64 {
            s.tick(now, &mut p0, std::slice::from_mut(&mut p1));
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            if s.lane(0).can_pop() && s.lane(1).can_pop() {
                let _ = s.lane_mut(0).pop();
                let _ = s.lane_mut(1).pop();
                pairs += 1;
            }
            if s.is_idle() {
                break;
            }
        }
        assert_eq!(pairs, 8, "both queued jobs must run");
        assert_eq!(s.joiner_stats().jobs, 2);
    }

    /// A count-only joiner job reports its would-be emission count via
    /// `JOIN_COUNT` without delivering (or fetching) any values — the
    /// length-prefix handshake for data-dependent trip counts.
    #[test]
    fn count_only_joiner_reports_intersection_size() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        place_join_workload(&mut tcdm, &[1, 4, 9, 11], &[0, 4, 9, 12]);
        let mut s = Streamer::sssr_config();
        assert!(s
            .cfg_write(
                cfg_addr(reg::JOIN_CFG, 0),
                crate::cfg::join_count_cfg_word(JoinerMode::Intersect, IndexSize::U16)
            )
            .unwrap());
        assert!(s.cfg_write(cfg_addr(reg::DATA_BASE, 0), BASE + 0x4000).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::JOIN_IDX_B, 0), BASE + 0x2000).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::JOIN_DATA_B, 0), BASE + 0x8000).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::JOIN_NNZ_A, 0), 4).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::JOIN_NNZ_B, 0), 4).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::RPTR[0], 0), BASE + 0x1000).unwrap());
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        for now in 0..2000u64 {
            s.tick(now, &mut p0, std::slice::from_mut(&mut p1));
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            assert!(!s.lane(0).can_pop() && !s.lane(1).can_pop(), "no values may be delivered");
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        assert_eq!(s.cfg_read(cfg_addr(reg::JOIN_COUNT, 0)).unwrap(), 2); // matches at 4 and 9
        assert_eq!(s.joiner_stats().val_reads, 0, "count-only fetches no values");
    }

    /// The SpAcc end to end over the configuration interface: two feed
    /// jobs merge through the write stream, `ACC_NNZ` reports the merged
    /// row length, and a drain packs it to memory.
    #[test]
    fn spacc_feed_and_drain_over_cfg_interface() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        tcdm.array_mut().store_u16_slice(BASE + 0x1000, &[2, 7]);
        tcdm.array_mut().store_u16_slice(BASE + 0x1100, &[2, 9]);
        let mut s = Streamer::sssr_config();
        assert!(s.has_spacc());
        assert!(s
            .cfg_write(cfg_addr(reg::ACC_CFG, 0), crate::cfg::acc_cfg_word(IndexSize::U16))
            .unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_COUNT, 0), 2).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_FEED, 0), BASE + 0x1000).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_FEED, 0), BASE + 0x1100).unwrap());
        assert!(
            !s.cfg_write(cfg_addr(reg::ACC_FEED, 0), BASE + 0x1100).unwrap(),
            "queue is one deep"
        );
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        let vals = [1.0f64, 2.0, 10.0, 20.0];
        let mut next = 0;
        for now in 0..2000u64 {
            if next < vals.len() && s.lane(1).can_push() {
                s.lane_mut(1).push(vals[next].to_bits());
                next += 1;
            }
            s.tick(now, &mut p0, std::slice::from_mut(&mut p1));
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            if s.is_idle() && next == vals.len() {
                break;
            }
        }
        assert!(s.is_idle());
        // Idle: done bit and feed-done bit both set.
        assert_eq!(s.cfg_read(cfg_addr(reg::ACC_STATUS, 0)).unwrap(), 0b101);
        assert_eq!(s.cfg_read(cfg_addr(reg::ACC_NNZ, 0)).unwrap(), 3); // {2, 7, 9}
        assert!(s.cfg_write(cfg_addr(reg::ACC_VAL_OUT, 0), BASE + 0x8000).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_DRAIN, 0), BASE + 0x4000).unwrap());
        assert_eq!(s.cfg_read(cfg_addr(reg::ACC_STATUS, 0)).unwrap() & 2, 2, "drain busy");
        for now in 2000..4000u64 {
            s.tick(now, &mut p0, std::slice::from_mut(&mut p1));
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            if s.is_idle() {
                break;
            }
        }
        assert_eq!(tcdm.array().load_u16(BASE + 0x4000), 2);
        assert_eq!(tcdm.array().load_u16(BASE + 0x4002), 7);
        assert_eq!(tcdm.array().load_u16(BASE + 0x4004), 9);
        assert_eq!(tcdm.array().load_f64(BASE + 0x8000), 11.0); // 1 + 10
        assert_eq!(tcdm.array().load_f64(BASE + 0x8008), 2.0);
        assert_eq!(tcdm.array().load_f64(BASE + 0x8010), 20.0);
        assert_eq!(s.cfg_read(cfg_addr(reg::ACC_NNZ, 0)).unwrap(), 0, "drain clears the row");
        assert_eq!(s.spacc_stats().feeds, 2);
        assert_eq!(s.spacc_stats().drains, 1);
    }

    #[test]
    fn spacc_launch_without_hardware_faults() {
        let mut s = Streamer::paper_config();
        assert!(s.cfg_write(cfg_addr(reg::ACC_COUNT, 0), 1).unwrap());
        assert_eq!(s.cfg_write(cfg_addr(reg::ACC_FEED, 0), BASE), Err(CfgFault::NoSpAcc));
        assert_eq!(s.cfg_write(cfg_addr(reg::ACC_DRAIN, 0), BASE), Err(CfgFault::NoSpAcc));
        assert_eq!(s.cfg_write(cfg_addr(reg::ACC_CLEAR, 0), 0), Err(CfgFault::NoSpAcc));
        // Readbacks fault too: a mis-targeted kernel must not spin on
        // status bits the hardware does not have.
        assert_eq!(s.cfg_read(cfg_addr(reg::ACC_STATUS, 0)), Err(CfgFault::NoSpAcc));
        assert_eq!(s.cfg_read(cfg_addr(reg::ACC_NNZ, 0)), Err(CfgFault::NoSpAcc));
        assert_eq!(s.cfg_read(cfg_addr(reg::JOIN_COUNT, 0)), Err(CfgFault::NoJoiner));
    }

    #[test]
    fn joiner_launch_without_hardware_faults() {
        let mut s = Streamer::paper_config();
        assert!(s
            .cfg_write(
                cfg_addr(reg::JOIN_CFG, 0),
                crate::cfg::join_cfg_word(JoinerMode::Intersect, IndexSize::U16)
            )
            .unwrap());
        assert_eq!(s.cfg_write(cfg_addr(reg::RPTR[0], 0), BASE), Err(CfgFault::NoJoiner));
    }

    /// The launch-time configuration faults of the SpAcc: a
    /// zero-capacity row buffer and a drain in count-only mode.
    #[test]
    fn spacc_malformed_cfg_words_fault() {
        let mut s = Streamer::sssr_config();
        assert!(s.cfg_write(cfg_addr(reg::ACC_COUNT, 0), 1).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_BUF_CAP, 0), 0).unwrap());
        assert_eq!(s.cfg_write(cfg_addr(reg::ACC_FEED, 0), BASE), Err(CfgFault::ZeroCapacity));
        assert!(s.cfg_write(cfg_addr(reg::ACC_BUF_CAP, 0), 64).unwrap());
        assert!(s
            .cfg_write(cfg_addr(reg::ACC_CFG, 0), crate::cfg::acc_count_cfg_word(IndexSize::U16))
            .unwrap());
        assert_eq!(s.cfg_write(cfg_addr(reg::ACC_DRAIN, 0), BASE), Err(CfgFault::CountModeDrain));
        // Back in normal mode the same drain launch is accepted.
        assert!(s
            .cfg_write(cfg_addr(reg::ACC_CFG, 0), crate::cfg::acc_cfg_word(IndexSize::U16))
            .unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_DRAIN, 0), BASE).unwrap());
    }

    /// Count-only feeds report the merged row length through `ACC_NNZ`
    /// without any value traffic, and `ACC_CLEAR` resets the row — the
    /// symbolic-phase handshake.
    #[test]
    fn count_only_feeds_report_row_nnz_without_values() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        tcdm.array_mut().store_u16_slice(BASE + 0x1000, &[2, 7, 9]);
        tcdm.array_mut().store_u16_slice(BASE + 0x1100, &[2, 11]);
        let mut s = Streamer::sssr_config();
        assert!(s
            .cfg_write(cfg_addr(reg::ACC_CFG, 0), crate::cfg::acc_count_cfg_word(IndexSize::U16))
            .unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_COUNT, 0), 3).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_FEED, 0), BASE + 0x1000).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_COUNT, 0), 2).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_FEED, 0), BASE + 0x1100).unwrap());
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        for now in 0..2000u64 {
            s.tick(now, &mut p0, std::slice::from_mut(&mut p1));
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle(), "count-only feeds retire without any write-stream values");
        assert_eq!(s.cfg_read(cfg_addr(reg::ACC_NNZ, 0)).unwrap(), 4); // {2, 7, 9, 11}
        assert_eq!(s.spacc_stats().count_feeds, 2);
        assert_eq!(s.spacc_stats().merges, 1, "duplicate index 2 merged");
        assert_eq!(s.lane(1).stats().fpu_writes, 0, "no value traffic");
        // ACC_CLEAR resets the row for the next symbolic row.
        assert!(s.cfg_write(cfg_addr(reg::ACC_CLEAR, 0), 0).unwrap());
        assert_eq!(s.cfg_read(cfg_addr(reg::ACC_NNZ, 0)).unwrap(), 0);
    }

    /// Misaligned drain output bases fault at launch (CfgFault), before
    /// the unit plans any strobed write.
    #[test]
    fn misaligned_drain_launch_faults() {
        let mut s = Streamer::sssr_config();
        assert!(s
            .cfg_write(cfg_addr(reg::ACC_CFG, 0), crate::cfg::acc_cfg_word(IndexSize::U16))
            .unwrap());
        // Value base not word aligned.
        assert!(s.cfg_write(cfg_addr(reg::ACC_VAL_OUT, 0), BASE + 4).unwrap());
        assert_eq!(
            s.cfg_write(cfg_addr(reg::ACC_DRAIN, 0), BASE + 0x100),
            Err(CfgFault::MisalignedDrain { idx_out: BASE + 0x100, val_out: BASE + 4 })
        );
        // Index base not element aligned (u16 → odd byte address).
        assert!(s.cfg_write(cfg_addr(reg::ACC_VAL_OUT, 0), BASE + 8).unwrap());
        assert_eq!(
            s.cfg_write(cfg_addr(reg::ACC_DRAIN, 0), BASE + 0x101),
            Err(CfgFault::MisalignedDrain { idx_out: BASE + 0x101, val_out: BASE + 8 })
        );
        // Aligned bases launch (element-aligned mid-word is fine).
        assert!(s.cfg_write(cfg_addr(reg::ACC_DRAIN, 0), BASE + 0x102).unwrap());
    }

    /// A lane job launched on lane 1 while the SpAcc owns its port is a
    /// mid-stream port conflict: the streamer latches a `StreamFault`,
    /// freezes, drains to idle, and delivers the fault exactly once.
    #[test]
    fn lane_job_on_spacc_port_latches_stream_fault() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        tcdm.array_mut().store_u16_slice(BASE + 0x1000, &[1, 2, 3, 4]);
        let mut s = Streamer::sssr_config();
        // A value-mode feed that stays busy (its values never arrive).
        assert!(s.cfg_write(cfg_addr(reg::ACC_COUNT, 0), 4).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_FEED, 0), BASE + 0x1000).unwrap());
        // A plain affine read job on lane 1 — the port the SpAcc owns.
        assert!(s.cfg_write(cfg_addr(reg::BOUNDS[0], 1), 3).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::STRIDES[0], 1), 8).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::RPTR[0], 1), BASE).unwrap());
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        for now in 0..200u64 {
            s.tick(now, &mut p0, std::slice::from_mut(&mut p1));
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            if s.stream_fault().is_some() && s.is_idle() {
                break;
            }
        }
        let fault = s.stream_fault().expect("conflict must latch");
        assert_eq!(fault.unit, crate::fault::StreamUnit::Lane(1));
        assert_eq!(fault.kind, crate::fault::StreamFaultKind::PortConflict);
        assert!(s.is_idle(), "frozen streamer must drain to idle");
        // Delivery is once-only; the latch itself stays visible.
        assert!(s.take_stream_fault().is_some());
        assert!(s.take_stream_fault().is_none());
        assert!(s.stream_fault().is_some());
    }

    /// A joiner job overlapping an active SpAcc job latches a port
    /// conflict on the joiner instead of panicking.
    #[test]
    fn joiner_overlapping_spacc_latches_stream_fault() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        place_join_workload(&mut tcdm, &[1, 2], &[2, 3]);
        tcdm.array_mut().store_u16_slice(BASE + 0x3000, &[1, 2, 3, 4]);
        let mut s = Streamer::sssr_config();
        assert!(s.cfg_write(cfg_addr(reg::ACC_COUNT, 0), 4).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::ACC_FEED, 0), BASE + 0x3000).unwrap());
        assert!(configure_join(&mut s, JoinerMode::Intersect, 2, 2));
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        for now in 0..200u64 {
            s.tick(now, &mut p0, std::slice::from_mut(&mut p1));
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            if s.stream_fault().is_some() && s.is_idle() {
                break;
            }
        }
        let fault = s.stream_fault().expect("overlap must latch");
        assert_eq!(fault.unit, crate::fault::StreamUnit::Joiner);
        assert_eq!(fault.kind, crate::fault::StreamFaultKind::PortConflict);
        assert!(s.is_idle());
    }

    /// Lane jobs launched before the joiner defer it: the joiner waits
    /// until lanes 0/1 release their ports.
    #[test]
    fn joiner_waits_for_lane_jobs_to_drain() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        for i in 0..8u32 {
            tcdm.array_mut().store_u64(BASE + i * 8, u64::from(i) + 700);
        }
        place_join_workload(&mut tcdm, &[3, 5], &[5]);
        let mut s = Streamer::sssr_config();
        // An affine job on lane 0 first.
        assert!(s.cfg_write(cfg_addr(reg::BOUNDS[0], 0), 7).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::STRIDES[0], 0), 8).unwrap());
        assert!(s.cfg_write(cfg_addr(reg::RPTR[0], 0), BASE).unwrap());
        // Then the joiner job; it must wait for the affine stream.
        assert!(configure_join(&mut s, JoinerMode::GatherA, 2, 1));
        s.set_enabled(true);
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        let mut lane0 = Vec::new();
        let mut lane1 = Vec::new();
        for now in 0..4000u64 {
            s.tick(now, &mut p0, std::slice::from_mut(&mut p1));
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            while s.lane(0).can_pop() {
                lane0.push(s.lane_mut(0).pop());
            }
            while s.lane(1).can_pop() {
                lane1.push(s.lane_mut(1).pop());
            }
            if s.is_idle() {
                break;
            }
        }
        assert!(s.is_idle());
        // Affine stream first, then the joiner's A side.
        assert_eq!(lane0, [700, 701, 702, 703, 704, 705, 706, 707, 1000, 1001]);
        // B side: index 3 absent (zero-fill), index 5 at B position 0.
        assert_eq!(lane1, [0, 2000]);
    }
}
