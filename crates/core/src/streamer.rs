//! The streamer: the set of SSR/ISSR lanes multiplexed into the FPU
//! register file (Fig. 2).
//!
//! The paper's area-optimized configuration provides one plain SSR
//! (mapped to `ft0`) and one ISSR (mapped to `ft1`), each with a private
//! memory port; [`Streamer::paper_config`] builds exactly that. Other
//! mixes (e.g. two ISSRs for codebook-compressed sparse values, §III-C)
//! are expressed by constructing with a different lane list.
//!
//! While the `ssr` CSR bit is set, floating-point register indices below
//! the lane count read/write the streams instead of the register file —
//! the *register redirection* the kernels toggle around their compute
//! loops.

use crate::lane::{Lane, LaneKind, LaneStats};
use issr_mem::port::MemPort;

/// The lane bundle attached to one core's FPU subsystem.
#[derive(Debug)]
pub struct Streamer {
    lanes: Vec<Lane>,
    enabled: bool,
}

impl Streamer {
    /// Creates a streamer with the given lane kinds; lane *i* maps to
    /// floating-point register *f_i*.
    ///
    /// # Panics
    /// Panics if no lanes are given or more than 8 (the register-map
    /// window).
    #[must_use]
    pub fn new(kinds: &[LaneKind]) -> Self {
        assert!(
            (1..=8).contains(&kinds.len()),
            "streamer supports 1..=8 lanes, got {}",
            kinds.len()
        );
        Self { lanes: kinds.iter().map(|&k| Lane::new(k)).collect(), enabled: false }
    }

    /// The paper's evaluated configuration: one SSR (`ft0`) and one ISSR
    /// (`ft1`).
    #[must_use]
    pub fn paper_config() -> Self {
        Self::new(&[LaneKind::Ssr, LaneKind::Issr])
    }

    /// Number of lanes.
    #[must_use]
    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Sets the register-redirection enable (the `ssr` CSR bit).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether register redirection is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The lane a floating-point register redirects to, if any.
    #[must_use]
    pub fn lane_of_reg(&self, fp_reg: u8) -> Option<usize> {
        if self.enabled && (fp_reg as usize) < self.lanes.len() {
            Some(fp_reg as usize)
        } else {
            None
        }
    }

    /// Immutable lane access.
    #[must_use]
    pub fn lane(&self, index: usize) -> &Lane {
        &self.lanes[index]
    }

    /// Mutable lane access (register-file side uses this to pop/push).
    pub fn lane_mut(&mut self, index: usize) -> &mut Lane {
        &mut self.lanes[index]
    }

    /// Configuration write from the core (`scfgwi`); the 12-bit address is
    /// `reg << 5 | lane`. Returns `false` if the lane cannot accept the
    /// write this cycle (job queue full — the core retries).
    pub fn cfg_write(&mut self, addr: u16, value: u32) -> bool {
        let (register, lane) = crate::cfg::split_addr(addr);
        let lane = lane as usize;
        assert!(lane < self.lanes.len(), "scfgwi to nonexistent lane {lane}");
        self.lanes[lane].cfg_write(register, value)
    }

    /// Configuration read from the core (`scfgri`).
    #[must_use]
    pub fn cfg_read(&self, addr: u16) -> u32 {
        let (register, lane) = crate::cfg::split_addr(addr);
        let lane = lane as usize;
        assert!(lane < self.lanes.len(), "scfgri to nonexistent lane {lane}");
        self.lanes[lane].cfg_read(register)
    }

    /// Advances all lanes one cycle; `ports[i]` is lane *i*'s private
    /// memory port.
    ///
    /// # Panics
    /// Panics if the port count does not match the lane count.
    pub fn tick(&mut self, now: u64, ports: &mut [&mut MemPort]) {
        assert_eq!(ports.len(), self.lanes.len(), "one port per lane");
        for (lane, port) in self.lanes.iter_mut().zip(ports.iter_mut()) {
            lane.tick(now, port);
        }
    }

    /// Whether every lane has fully drained.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.lanes.iter().all(Lane::is_idle)
    }

    /// Per-lane statistics.
    #[must_use]
    pub fn stats(&self) -> Vec<LaneStats> {
        self.lanes.iter().map(|l| l.stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{cfg_addr, idx_cfg_word, reg};
    use crate::serializer::IndexSize;
    use issr_mem::tcdm::Tcdm;

    const BASE: u32 = 0x0010_0000;

    #[test]
    fn paper_config_shape() {
        let s = Streamer::paper_config();
        assert_eq!(s.n_lanes(), 2);
        assert_eq!(s.lane(0).kind(), LaneKind::Ssr);
        assert_eq!(s.lane(1).kind(), LaneKind::Issr);
    }

    #[test]
    fn redirection_gated_by_enable() {
        let mut s = Streamer::paper_config();
        assert_eq!(s.lane_of_reg(0), None);
        s.set_enabled(true);
        assert_eq!(s.lane_of_reg(0), Some(0));
        assert_eq!(s.lane_of_reg(1), Some(1));
        assert_eq!(s.lane_of_reg(2), None);
    }

    /// The paper's SpVV data flow: SSR streams the sparse values while
    /// the ISSR gathers dense operands at the sparse indices — both
    /// sustained concurrently on private ports.
    #[test]
    fn concurrent_ssr_and_issr_streams() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let nnz = 40u32;
        let a_vals = BASE;
        let b = BASE + 0x4000;
        let a_idcs = BASE + 0x8000;
        for j in 0..nnz {
            tcdm.array_mut().store_f64(a_vals + j * 8, f64::from(j));
        }
        for i in 0..256u32 {
            tcdm.array_mut().store_f64(b + i * 8, f64::from(i) * 0.5);
        }
        let idcs: Vec<u16> = (0..nnz as u16).map(|j| (j * 13) % 256).collect();
        tcdm.array_mut().store_u16_slice(a_idcs, &idcs);

        let mut s = Streamer::paper_config();
        // ft0: affine over a_vals.
        assert!(s.cfg_write(cfg_addr(reg::BOUNDS[0], 0), nnz - 1));
        assert!(s.cfg_write(cfg_addr(reg::STRIDES[0], 0), 8));
        assert!(s.cfg_write(cfg_addr(reg::RPTR[0], 0), a_vals));
        // ft1: indirect over b at a_idcs.
        assert!(s.cfg_write(cfg_addr(reg::BOUNDS[0], 1), nnz - 1));
        assert!(s.cfg_write(cfg_addr(reg::IDX_CFG, 1), idx_cfg_word(IndexSize::U16, 0)));
        assert!(s.cfg_write(cfg_addr(reg::DATA_BASE, 1), b));
        assert!(s.cfg_write(cfg_addr(reg::RPTR[0], 1), a_idcs));
        s.set_enabled(true);

        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        let mut dot = 0.0f64;
        let mut pairs = 0u32;
        let mut cycles = 0u64;
        for now in 0..2000u64 {
            s.tick(now, &mut [&mut p0, &mut p1]);
            tcdm.tick(now, &mut [&mut p0, &mut p1], &[]);
            if s.lane(0).can_pop() && s.lane(1).can_pop() {
                let a = f64::from_bits(s.lane_mut(0).pop());
                let x = f64::from_bits(s.lane_mut(1).pop());
                dot += a * x;
                pairs += 1;
            }
            cycles = now + 1;
            if pairs == nnz {
                break;
            }
        }
        let expected: f64 =
            (0..nnz).map(|j| f64::from(j) * (f64::from((j * 13) % 256) * 0.5)).sum();
        assert_eq!(dot, expected);
        // Pair rate limited by the ISSR's 4/5 cap, not the SSR.
        let rate = f64::from(pairs) / cycles as f64;
        assert!(rate > 0.7, "pair rate {rate:.3} too low");
        assert!(s.is_idle());
    }

    #[test]
    fn status_readable_over_cfg_interface() {
        let s = Streamer::paper_config();
        assert_eq!(s.cfg_read(cfg_addr(reg::STATUS, 0)), 1);
        assert_eq!(s.cfg_read(cfg_addr(reg::STATUS, 1)), 1);
    }

    #[test]
    #[should_panic(expected = "nonexistent lane")]
    fn cfg_write_to_missing_lane_panics() {
        let mut s = Streamer::paper_config();
        let _ = s.cfg_write(cfg_addr(reg::STATUS, 5), 0);
    }
}
