//! Configuration-validation predicates shared by the runtime and the
//! static linter.
//!
//! The streamer rejects malformed `scfg` accesses with a [`CfgFault`]
//! before any hardware state changes (PR 3). `issr-lint` proves the
//! same rejections at assemble time by abstract interpretation over a
//! program's shadow-register writes. Both callers go through the
//! predicates in this module, so the static verdict and the runtime
//! trap surface cannot drift apart: a launch the linter flags is a
//! launch [`crate::streamer::Streamer::cfg_write`] would fault, by
//! construction.
//!
//! Every predicate is a pure function of decoded shadow state and the
//! hardware capability set ([`HwCaps`]); the streamer passes its own
//! capabilities, the linter passes the lint target's.

use crate::cfg::{reg, AccDrainSpec, AccFeedSpec, CfgShadow};
use crate::lane::LaneKind;

/// A malformed streamer configuration access: the hardware cannot
/// execute it and raises a fault the core latches as a trap (surfaced
/// through the run summaries) instead of aborting the simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CfgFault {
    /// `scfgwi`/`scfgri` addressed a lane this streamer does not have.
    BadLane {
        /// The addressed lane index.
        lane: u8,
    },
    /// A joiner job was launched on a streamer without joiner hardware.
    NoJoiner,
    /// A SpAcc job was launched on a streamer without a sparse
    /// accumulator.
    NoSpAcc,
    /// A SpAcc feed was launched with a zero-capacity row buffer
    /// (`ACC_BUF_CAP` written to 0).
    ZeroCapacity,
    /// A SpAcc drain was launched while `ACC_CFG` selects count-only
    /// (symbolic) mode — there are no values to drain.
    CountModeDrain,
    /// A pointer write would launch an indirection (ISSR) job on a
    /// plain SSR lane, which has no indirection unit.
    NoIndirection {
        /// The addressed lane index.
        lane: u8,
    },
    /// A pointer write with `JOIN_CFG` enabled outside the joiner's
    /// launch register (lane 0's `RPTR[0]`) — the joiner spans lanes
    /// 0/1 and launches only through that register.
    BadJoinerLaunch {
        /// The addressed lane index.
        lane: u8,
    },
    /// A SpAcc drain was launched with a misaligned output base: the
    /// index base must be element aligned, the value base word aligned
    /// (byte strobes cover partial words, not arbitrary offsets).
    MisalignedDrain {
        /// The index output base of the faulting launch.
        idx_out: u32,
        /// The value output base of the faulting launch.
        val_out: u32,
    },
}

impl std::fmt::Display for CfgFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfgFault::BadLane { lane } => write!(f, "scfg access to nonexistent lane {lane}"),
            CfgFault::NoJoiner => {
                f.write_str("joiner job launched on a streamer without an index joiner")
            }
            CfgFault::NoSpAcc => {
                f.write_str("SpAcc job launched on a streamer without a sparse accumulator")
            }
            CfgFault::ZeroCapacity => {
                f.write_str("SpAcc feed launched with a zero-capacity row buffer")
            }
            CfgFault::CountModeDrain => {
                f.write_str("SpAcc drain launched in count-only (symbolic) mode")
            }
            CfgFault::NoIndirection { lane } => {
                write!(f, "indirection job launched on plain SSR lane {lane}")
            }
            CfgFault::BadJoinerLaunch { lane } => {
                write!(f, "joiner-enabled pointer write outside the launch register (lane {lane})")
            }
            CfgFault::MisalignedDrain { idx_out, val_out } => {
                write!(
                    f,
                    "SpAcc drain launched with misaligned output bases \
                     (idcs {idx_out:#010x}, vals {val_out:#010x})"
                )
            }
        }
    }
}

/// The stream-unit hardware a configuration access is checked against:
/// the lane list plus the optional joiner and sparse accumulator. The
/// streamer derives this from its own construction; the linter from the
/// target machine description. Borrowed and `Copy` so the per-access
/// hot path never allocates.
#[derive(Clone, Copy, Debug)]
pub struct HwCaps<'a> {
    /// Lane kinds, indexed like the lanes (`ft0`, `ft1`, ...).
    pub lanes: &'a [LaneKind],
    /// Whether the hardware includes the index joiner.
    pub has_joiner: bool,
    /// Whether the hardware includes the sparse accumulator.
    pub has_spacc: bool,
}

impl HwCaps<'_> {
    /// Validates a lane index against the lane list.
    ///
    /// # Errors
    /// [`CfgFault::BadLane`] for a lane this hardware does not have.
    pub fn check_lane(&self, lane: u8) -> Result<(), CfgFault> {
        if (lane as usize) < self.lanes.len() {
            Ok(())
        } else {
            Err(CfgFault::BadLane { lane })
        }
    }

    /// Validates a joiner launch or `JOIN_COUNT` readback.
    ///
    /// # Errors
    /// [`CfgFault::NoJoiner`] without joiner hardware.
    pub fn check_joiner_present(&self) -> Result<(), CfgFault> {
        if self.has_joiner {
            Ok(())
        } else {
            Err(CfgFault::NoJoiner)
        }
    }

    /// Validates a SpAcc launch (`ACC_FEED`/`ACC_DRAIN`/`ACC_CLEAR`) or
    /// readback (`ACC_NNZ`/`ACC_STATUS`).
    ///
    /// # Errors
    /// [`CfgFault::NoSpAcc`] without accumulator hardware.
    pub fn check_spacc_present(&self) -> Result<(), CfgFault> {
        if self.has_spacc {
            Ok(())
        } else {
            Err(CfgFault::NoSpAcc)
        }
    }

    /// Validates a SpAcc feed launch against the decoded spec.
    ///
    /// # Errors
    /// [`CfgFault::NoSpAcc`] without accumulator hardware,
    /// [`CfgFault::ZeroCapacity`] for a zero-capacity row buffer.
    pub fn check_feed(&self, spec: &AccFeedSpec) -> Result<(), CfgFault> {
        self.check_spacc_present()?;
        if spec.cap == 0 {
            return Err(CfgFault::ZeroCapacity);
        }
        Ok(())
    }

    /// Validates a SpAcc drain launch against the decoded spec and the
    /// shadow's count-only mode bit.
    ///
    /// # Errors
    /// [`CfgFault::NoSpAcc`] without accumulator hardware,
    /// [`CfgFault::CountModeDrain`] in count-only mode, and
    /// [`CfgFault::MisalignedDrain`] for misaligned output bases.
    pub fn check_drain(&self, count_only: bool, spec: &AccDrainSpec) -> Result<(), CfgFault> {
        self.check_spacc_present()?;
        if count_only {
            return Err(CfgFault::CountModeDrain);
        }
        if spec.idx_out % spec.idx_size.bytes() != 0 || spec.val_out % 8 != 0 {
            return Err(CfgFault::MisalignedDrain { idx_out: spec.idx_out, val_out: spec.val_out });
        }
        Ok(())
    }

    /// Validates a lane pointer write (`RPTR[d]`/`WPTR[d]`) against the
    /// lane's shadow state. The joiner's own launch register (lane 0's
    /// `RPTR[0]` with `JOIN_CFG` enabled) is dispatched before this
    /// check — see [`is_joiner_launch`].
    ///
    /// # Errors
    /// [`CfgFault::BadJoinerLaunch`] for a joiner-enabled pointer write
    /// outside the launch register, [`CfgFault::NoIndirection`] for an
    /// indirection launch on a plain SSR lane.
    pub fn check_pointer_write(&self, shadow: &CfgShadow, lane: u8) -> Result<(), CfgFault> {
        if shadow.join_enabled() {
            return Err(CfgFault::BadJoinerLaunch { lane });
        }
        if shadow.indirect() && self.lanes[lane as usize] != LaneKind::Issr {
            return Err(CfgFault::NoIndirection { lane });
        }
        Ok(())
    }
}

/// Whether `(register, lane)` is a lane pointer register — a write to
/// it launches a read or write job from the current shadow state.
#[must_use]
pub fn is_pointer_reg(register: u16) -> bool {
    reg::RPTR.contains(&register) || reg::WPTR.contains(&register)
}

/// Whether a write to `(register, lane)` under `shadow` launches a
/// joiner job: lane 0's `RPTR[0]` with `JOIN_CFG` enabled.
#[must_use]
pub fn is_joiner_launch(register: u16, lane: u8, shadow: &CfgShadow) -> bool {
    lane == 0 && register == reg::RPTR[0] && shadow.join_enabled()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{acc_count_cfg_word, idx_cfg_word, join_cfg_word, JoinerMode};
    use crate::serializer::IndexSize;

    const LANES: &[LaneKind] = &[LaneKind::Ssr, LaneKind::Issr];

    fn sssr_caps() -> HwCaps<'static> {
        HwCaps { lanes: LANES, has_joiner: true, has_spacc: true }
    }

    fn paper_caps() -> HwCaps<'static> {
        HwCaps { lanes: LANES, has_joiner: false, has_spacc: false }
    }

    #[test]
    fn lane_bounds() {
        assert_eq!(paper_caps().check_lane(1), Ok(()));
        assert_eq!(paper_caps().check_lane(2), Err(CfgFault::BadLane { lane: 2 }));
    }

    #[test]
    fn hardware_presence() {
        assert_eq!(paper_caps().check_joiner_present(), Err(CfgFault::NoJoiner));
        assert_eq!(paper_caps().check_spacc_present(), Err(CfgFault::NoSpAcc));
        assert_eq!(sssr_caps().check_joiner_present(), Ok(()));
        assert_eq!(sssr_caps().check_spacc_present(), Ok(()));
    }

    #[test]
    fn feed_and_drain_specs() {
        let mut shadow = CfgShadow::default();
        shadow.write(reg::ACC_BUF_CAP, 0);
        let feed = AccFeedSpec::from_shadow(&shadow, 0x1000);
        assert_eq!(sssr_caps().check_feed(&feed), Err(CfgFault::ZeroCapacity));
        shadow.write(reg::ACC_BUF_CAP, 16);
        let feed = AccFeedSpec::from_shadow(&shadow, 0x1000);
        assert_eq!(sssr_caps().check_feed(&feed), Ok(()));

        shadow.write(reg::ACC_VAL_OUT, 0x2004);
        let drain = AccDrainSpec::from_shadow(&shadow, 0x3000);
        assert_eq!(
            sssr_caps().check_drain(false, &drain),
            Err(CfgFault::MisalignedDrain { idx_out: 0x3000, val_out: 0x2004 })
        );
        shadow.write(reg::ACC_VAL_OUT, 0x2008);
        let drain = AccDrainSpec::from_shadow(&shadow, 0x3000);
        assert_eq!(sssr_caps().check_drain(true, &drain), Err(CfgFault::CountModeDrain));
        assert_eq!(sssr_caps().check_drain(false, &drain), Ok(()));
        // Count-only mode also flips the index size decode path.
        shadow.write(reg::ACC_CFG, acc_count_cfg_word(IndexSize::U32));
        let drain = AccDrainSpec::from_shadow(&shadow, 0x3002);
        assert_eq!(
            sssr_caps().check_drain(false, &drain),
            Err(CfgFault::MisalignedDrain { idx_out: 0x3002, val_out: 0x2008 })
        );
    }

    #[test]
    fn pointer_write_capabilities() {
        let mut shadow = CfgShadow::default();
        assert_eq!(sssr_caps().check_pointer_write(&shadow, 0), Ok(()));
        shadow.write(reg::IDX_CFG, idx_cfg_word(IndexSize::U16, 0));
        assert_eq!(
            sssr_caps().check_pointer_write(&shadow, 0),
            Err(CfgFault::NoIndirection { lane: 0 })
        );
        assert_eq!(sssr_caps().check_pointer_write(&shadow, 1), Ok(()));
        shadow.write(reg::JOIN_CFG, join_cfg_word(JoinerMode::Intersect, IndexSize::U16));
        assert_eq!(
            sssr_caps().check_pointer_write(&shadow, 1),
            Err(CfgFault::BadJoinerLaunch { lane: 1 })
        );
    }

    #[test]
    fn launch_register_decode() {
        let mut shadow = CfgShadow::default();
        assert!(!is_joiner_launch(reg::RPTR[0], 0, &shadow));
        shadow.write(reg::JOIN_CFG, join_cfg_word(JoinerMode::Union, IndexSize::U16));
        assert!(is_joiner_launch(reg::RPTR[0], 0, &shadow));
        assert!(!is_joiner_launch(reg::RPTR[0], 1, &shadow));
        assert!(!is_joiner_launch(reg::RPTR[1], 0, &shadow));
        assert!(is_pointer_reg(reg::WPTR[0]));
        assert!(!is_pointer_reg(reg::STATUS));
    }
}
