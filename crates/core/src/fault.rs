//! Structured mid-stream fault descriptors.
//!
//! PR 3 latched *configuration-time* faults ([`crate::streamer::CfgFault`]):
//! a malformed `scfg` access is rejected before any hardware state
//! changes. This module covers the second half of the trap surface —
//! faults that arise *while a stream job is already running*: a SpAcc
//! row-buffer overflow, an unsorted feed, a stalled drain, or two units
//! contending for one memory port. SSSR (arXiv:2305.05559) raises
//! precise exceptions on malformed stream state for exactly this reason:
//! a device model that serves untrusted workloads must latch and report,
//! never abort.
//!
//! A [`StreamFault`] names the offending unit and the failure kind. The
//! streamer latches the first fault, freezes every stream unit (in-flight
//! memory responses still drain, so ports settle cleanly), and exposes
//! the fault for the core to take as a trap. Some kinds are
//! *recoverable* at the kernel layer: [`StreamFaultKind::Overflow`]
//! carries the capacity that was exceeded, and the SpAcc restores its
//! row buffer to the pre-feed checkpoint, so a host can grow
//! `ACC_BUF_CAP` and replay (see [`crate::spacc`] for the protocol).

/// The stream unit a mid-stream fault originated from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamUnit {
    /// A streamer lane (SSR/ISSR), by index.
    Lane(u8),
    /// The sparse-sparse index joiner (lanes 0/1).
    Joiner,
    /// The sparse accumulator (lane 1's write stream).
    SpAcc,
}

impl std::fmt::Display for StreamUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Each unit names the lane ports it owns, so a fault report
        // pinpoints the contended port without a hardware map — and the
        // static linter's diagnostics read identically.
        match self {
            StreamUnit::Lane(lane) => write!(f, "lane {lane}"),
            StreamUnit::Joiner => f.write_str("index joiner (lanes 0/1)"),
            StreamUnit::SpAcc => {
                write!(f, "sparse accumulator (lane {} write stream)", crate::spacc::SPACC_LANE)
            }
        }
    }
}

/// What went wrong mid-stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamFaultKind {
    /// The SpAcc's merged row exceeded the configured `ACC_BUF_CAP`.
    /// Recoverable: the row buffer is restored to its pre-feed
    /// checkpoint, so growing the capacity and replaying the faulted
    /// row's feeds reproduces the correct result (grow-and-retry).
    Overflow {
        /// The row-buffer capacity that was exceeded, in elements.
        cap: u32,
    },
    /// A SpAcc feed delivered a decreasing index within one job (feed
    /// input must be non-decreasing, as CSR row expansions are).
    Unsorted {
        /// The last in-order index.
        prev: u32,
        /// The offending (smaller) index that followed it.
        next: u32,
    },
    /// The unit's progress watchdog expired: a job was in flight but
    /// made no progress (no request, response, merge step, or delivery)
    /// for the configured number of cycles — a drain stall or feed
    /// underrun that would otherwise hang the simulation.
    Stall {
        /// Consecutive progress-free cycles when the watchdog fired.
        cycles: u64,
    },
    /// Two masters contended for one lane port mid-stream (a lane job
    /// launched on a port owned by the joiner or the SpAcc, or a joiner
    /// job overlapping an active SpAcc job).
    PortConflict,
}

/// A latched mid-stream fault: which unit, and why.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StreamFault {
    /// The offending unit.
    pub unit: StreamUnit,
    /// The failure kind.
    pub kind: StreamFaultKind,
}

impl std::fmt::Display for StreamFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            StreamFaultKind::Overflow { cap } => {
                write!(f, "{}: row buffer overflow (capacity {cap})", self.unit)
            }
            StreamFaultKind::Unsorted { prev, next } => {
                write!(f, "{}: unsorted feed index ({next} after {prev})", self.unit)
            }
            StreamFaultKind::Stall { cycles } => {
                write!(f, "{}: stream stalled for {cycles} cycles", self.unit)
            }
            StreamFaultKind::PortConflict => {
                write!(f, "{}: port conflict with an active stream job", self.unit)
            }
        }
    }
}

/// Reset value of the stream-unit progress watchdogs, in cycles. Large
/// enough that any legitimate backpressure (slow consumers, TCDM
/// contention, barrier skew) resets the counter first; a unit that makes
/// *zero* progress for this long is deadlocked and latches
/// [`StreamFaultKind::Stall`] instead of hanging the simulation.
pub const STREAM_WATCHDOG_RESET: u64 = 50_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_unit_and_kind() {
        let f = StreamFault { unit: StreamUnit::SpAcc, kind: StreamFaultKind::Overflow { cap: 8 } };
        let s = f.to_string();
        assert!(s.contains("sparse accumulator") && s.contains("overflow"), "{s}");
        let f = StreamFault {
            unit: StreamUnit::Lane(1),
            kind: StreamFaultKind::Unsorted { prev: 9, next: 3 },
        };
        assert!(f.to_string().contains("lane 1"), "{f}");
        let f =
            StreamFault { unit: StreamUnit::Joiner, kind: StreamFaultKind::Stall { cycles: 7 } };
        assert!(f.to_string().contains("stalled"), "{f}");
    }

    /// Every unit's Display names the lane port(s) it owns, so fault
    /// reports (runtime and lint) carry the port context directly.
    #[test]
    fn display_includes_owning_lanes() {
        let s = StreamUnit::SpAcc.to_string();
        assert!(s.contains("lane 1"), "{s}");
        let s = StreamUnit::Joiner.to_string();
        assert!(s.contains("lanes 0/1"), "{s}");
        let f = StreamFault { unit: StreamUnit::SpAcc, kind: StreamFaultKind::PortConflict };
        assert!(f.to_string().contains("lane 1"), "{f}");
    }
}
