//! # issr-core
//!
//! The paper's primary contribution: **indirection stream semantic
//! registers (ISSRs)** — stream semantic registers extended with a
//! streaming-indirection address generator so that sparse-dense inner
//! loops (`y += a_vals[j] * x[a_idcs[j]]`) execute as pure `fmadd`
//! streams.
//!
//! The crate models, cycle by cycle:
//!
//! * the shadowed configuration interface ([`cfg`]),
//! * the four-deep affine address iterator ([`affine`]),
//! * the indirection unit: index-word fetcher, decoupling FIFO, 16/32-bit
//!   index serializer with arbitrary alignment, shift + base adder and
//!   outstanding-request limiter ([`serializer`], [`lane`]),
//! * the round-robin multiplexing of index and data traffic onto one
//!   memory port, which yields the paper's 4/5 (16-bit) and 2/3 (32-bit)
//!   peak data rates ([`lane`]),
//! * the sparse-sparse **index joiner** of the SSSR follow-up
//!   (arXiv:2305.05559): an index comparator that intersects, unions or
//!   left-joins two sparse index streams and feeds matched value pairs
//!   to the register file ([`joiner`]),
//! * the **sparse accumulator** (SpAcc): the symmetric write-stream
//!   unit, a union-merging sparse output builder that turns a lane's
//!   write stream into compressed (idcs[], vals[]) rows — the builder
//!   row-wise SpGEMM needs ([`spacc`]),
//! * the lane bundle mapped onto the FP register file ([`streamer`]).
//!
//! The streamer is platform-agnostic, exactly as the paper argues: it
//! talks to the world through [`issr_mem::port::MemPort`] and a small
//! register-file interface, and is embedded into the Snitch core complex
//! by the `issr-snitch` crate.

#![forbid(unsafe_code)]

pub mod affine;
pub mod cfg;
pub mod cfg_check;
pub mod fault;
pub mod fifo;
pub mod joiner;
pub mod lane;
pub mod serializer;
pub mod spacc;
pub mod streamer;

pub use affine::{AffineIterator, MAX_DIMS};
pub use cfg::{
    acc_cfg_word, acc_count_cfg_word, cfg_addr, idx_cfg_word, join_cfg_word, join_count_cfg_word,
    AccDrainSpec, AccFeedSpec, CfgShadow, JobKind, JobSpec, JoinerMode, JoinerSpec, Pattern,
    SPACC_ROW_CAP_RESET,
};
pub use cfg_check::{CfgFault, HwCaps};
pub use fault::{StreamFault, StreamFaultKind, StreamUnit, STREAM_WATCHDOG_RESET};
pub use fifo::Fifo;
pub use joiner::{IndexJoiner, JoinerStats, JOIN_OUT_DEPTH};
pub use lane::{Lane, LaneKind, LaneStats, DATA_FIFO_DEPTH, IDX_FIFO_DEPTH};
pub use serializer::{IndexSerializer, IndexSize};
pub use spacc::{SpAcc, SpAccStats, SPACC_LANE};
pub use streamer::{Streamer, StreamerProbe};
