//! A hardware-style bounded FIFO.
//!
//! Decouples the register and memory streams of each SSR/ISSR lane
//! (five data stages in the paper's configuration). Push/pop model the
//! valid/ready handshake: callers must check capacity first, as the RTL
//! would assert back-pressure.

use std::collections::VecDeque;

/// Bounded FIFO with occupancy statistics.
#[derive(Clone, Debug)]
pub struct Fifo<T> {
    slots: VecDeque<T>,
    capacity: usize,
    /// Total elements ever pushed.
    pub pushes: u64,
    /// Total elements ever popped.
    pub pops: u64,
}

impl<T> Fifo<T> {
    /// Creates an empty FIFO with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive"); // gate-allow: host-API construction precondition
        Self { slots: VecDeque::with_capacity(capacity), capacity, pushes: 0, pops: 0 }
    }

    /// Maximum number of elements.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the FIFO holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the FIFO is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.slots.len() == self.capacity
    }

    /// Free slots remaining.
    #[must_use]
    pub fn free(&self) -> usize {
        self.capacity - self.slots.len()
    }

    /// Pushes an element.
    ///
    /// # Panics
    /// Panics if the FIFO is full — the caller models back-pressure and
    /// must check [`Self::is_full`] first.
    pub fn push(&mut self, value: T) {
        assert!(!self.is_full(), "FIFO overflow"); // gate-allow: documented precondition; callers model back-pressure via is_full
        self.slots.push_back(value);
        self.pushes += 1;
    }

    /// Pops the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        let v = self.slots.pop_front();
        if v.is_some() {
            self.pops += 1;
        }
        v
    }

    /// Peeks at the oldest element.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.slots.front()
    }

    /// Discards all buffered elements (the stream-fault squash path —
    /// counted as pops so the push/pop statistics stay balanced).
    pub fn clear(&mut self) {
        self.pops += self.slots.len() as u64;
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_capacity() {
        let mut f = Fifo::new(3);
        f.push(1);
        f.push(2);
        f.push(3);
        assert!(f.is_full());
        assert_eq!(f.pop(), Some(1));
        f.push(4);
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(4));
        assert_eq!(f.pop(), None);
        assert_eq!(f.pushes, 4);
        assert_eq!(f.pops, 4);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut f = Fifo::new(1);
        f.push(1);
        f.push(2);
    }

    #[test]
    fn front_does_not_consume() {
        let mut f = Fifo::new(2);
        f.push(7);
        assert_eq!(f.front(), Some(&7));
        assert_eq!(f.len(), 1);
    }
}
