//! A single stream lane: either a plain SSR or an indirection-capable
//! ISSR.
//!
//! Each lane owns one 64-bit memory port (§II-B: the area-optimized
//! configuration with one port per SSR). A plain SSR lane drives its
//! port from the affine address generator alone and sustains one element
//! per cycle. An ISSR lane in indirection mode multiplexes **index-word
//! fetches** and **data accesses** onto the same port with a round-robin
//! arbiter (Fig. 2, block F): one index word serves 2 (32-bit) or
//! 4 (16-bit) elements, capping sustained data throughput at 2/3 resp.
//! 4/5 of a word per cycle — the paper's peak FPU utilization limits.

use crate::affine::AffineIterator;
use crate::cfg::{reg, CfgShadow, JobKind, JobSpec, Pattern};
use crate::fifo::Fifo;
use crate::serializer::{IndexSerializer, IndexSize};
use issr_mem::port::{MemPort, MemReq};
use issr_trace::StallCause;
use std::collections::VecDeque;

/// What a lane's hardware supports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LaneKind {
    /// Affine streaming only (the baseline SSR).
    Ssr,
    /// Affine streaming plus streaming indirection (the paper's ISSR).
    Issr,
}

/// Default data FIFO depth (five stages, as synthesized in §IV-C).
pub const DATA_FIFO_DEPTH: usize = 5;
/// Default index-word FIFO depth (the decoupling FIFO of Fig. 1).
pub const IDX_FIFO_DEPTH: usize = 4;

/// Per-lane activity counters for verification and the power model.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaneStats {
    /// Data words fetched from memory (read jobs).
    pub data_reads: u64,
    /// Data words written to memory (write jobs).
    pub data_writes: u64,
    /// Index words fetched (indirection only).
    pub idx_words: u64,
    /// Values handed to the register file (includes repeats).
    pub fpu_reads: u64,
    /// Values accepted from the register file.
    pub fpu_writes: u64,
    /// Jobs completed.
    pub jobs: u64,
}

impl issr_trace::StatMerge for LaneStats {
    fn merge_from(&mut self, other: &Self) {
        self.data_reads += other.data_reads;
        self.data_writes += other.data_writes;
        self.idx_words += other.idx_words;
        self.fpu_reads += other.fpu_reads;
        self.fpu_writes += other.fpu_writes;
        self.jobs += other.jobs;
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RspTag {
    IdxWord,
    DataWord { repeat: u32 },
}

#[derive(Debug)]
struct IndirectUnit {
    word_it: AffineIterator,
    idx_fifo: Fifo<u64>,
    serializer: IndexSerializer,
    outstanding_idx: usize,
    idx_size: IndexSize,
    shift: u32,
    data_base: u32,
    emitted: u64,
    count: u64,
    /// Round-robin marker: `true` if the index fetcher won the last
    /// contended cycle.
    idx_won_last: bool,
}

impl IndirectUnit {
    fn new(idx_base: u32, idx_size: IndexSize, shift: u32, data_base: u32, count: u64) -> Self {
        let words = IndexSerializer::words_needed(idx_size, idx_base, count);
        let word_it = AffineIterator::linear(idx_base & !7, words.max(1) as u32, 8);
        let mut unit = Self {
            word_it,
            idx_fifo: Fifo::new(IDX_FIFO_DEPTH),
            serializer: IndexSerializer::new(idx_size, idx_base, count),
            outstanding_idx: 0,
            idx_size,
            shift,
            data_base,
            emitted: 0,
            count,
            idx_won_last: false,
        };
        if words == 0 {
            // Zero-element job: nothing to fetch.
            while unit.word_it.next_addr().is_some() {}
        }
        unit
    }

    /// Indices available now or already paid for (buffered + in flight),
    /// in elements.
    fn index_headroom(&self) -> u64 {
        let per_word = u64::from(self.idx_size.per_word());
        self.serializer.buffered()
            + (self.idx_fifo.len() as u64 + self.outstanding_idx as u64) * per_word
    }

    /// Whether the index fetcher should request the port this cycle:
    /// more words exist, FIFO space is reserved, and the buffer is down
    /// to one word's worth — the just-in-time policy that yields the
    /// 4/5 and 2/3 steady-state patterns.
    fn idx_wants(&self) -> bool {
        !self.word_it.is_done()
            && self.idx_fifo.free() > self.outstanding_idx
            && self.index_headroom() <= u64::from(self.idx_size.per_word())
    }

    /// Whether an index can be consumed this cycle.
    fn index_available(&self) -> bool {
        self.serializer.index_ready() || (self.serializer.wants_word() && !self.idx_fifo.is_empty())
    }

    /// Consumes the next index, pulling a word from the FIFO if needed.
    fn take_index(&mut self) -> u32 {
        if self.serializer.wants_word() {
            let word = self.idx_fifo.pop().expect("index_available checked");
            self.serializer.load_word(word);
        }
        self.serializer.next_index().expect("index_available checked")
    }

    /// Address of the element a consumed index selects.
    fn data_addr(&self, idx: u32) -> u32 {
        self.data_base.wrapping_add(idx << (3 + self.shift))
    }
}

#[derive(Debug)]
enum Engine {
    Affine(AffineIterator),
    Indirect(IndirectUnit),
}

#[derive(Debug)]
struct RunningJob {
    kind: JobKind,
    repeat: u32,
    engine: Engine,
}

/// One SSR/ISSR lane.
#[derive(Debug)]
pub struct Lane {
    kind: LaneKind,
    shadow: CfgShadow,
    job: Option<RunningJob>,
    pending: Option<JobSpec>,
    data_fifo: Fifo<(u64, u32)>,
    head_served: u32,
    outstanding_data: usize,
    rsp_tags: VecDeque<RspTag>,
    /// Set by a streamer-level stream fault: the lane stops issuing,
    /// drains its in-flight responses, then discards all job and buffer
    /// state so the frozen streamer settles to idle.
    frozen: bool,
    /// Last cycle's outcome flags for attribution: a request went out /
    /// a request wanted out but the port was taken (shared-port loss).
    issued: bool,
    blocked_on_port: bool,
    stats: LaneStats,
}

impl Lane {
    /// Creates an idle lane.
    #[must_use]
    pub fn new(kind: LaneKind) -> Self {
        Self {
            kind,
            shadow: CfgShadow::default(),
            job: None,
            pending: None,
            data_fifo: Fifo::new(DATA_FIFO_DEPTH),
            head_served: 0,
            outstanding_data: 0,
            rsp_tags: VecDeque::new(),
            frozen: false,
            issued: false,
            blocked_on_port: false,
            stats: LaneStats::default(),
        }
    }

    /// Freezes the lane after a stream fault elsewhere in the streamer:
    /// no new requests issue and, once the in-flight responses drain,
    /// the running job, the queued job and all buffered data are
    /// discarded ([`Self::tick`] finishes the drain).
    pub(crate) fn freeze(&mut self) {
        self.frozen = true;
        self.pending = None;
    }

    /// The lane's capability class.
    #[must_use]
    pub fn kind(&self) -> LaneKind {
        self.kind
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> LaneStats {
        self.stats
    }

    /// Whether the lane has fully drained (no job, no queued job, no data
    /// in flight or buffered).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.job.is_none()
            && self.pending.is_none()
            && self.data_fifo.is_empty()
            && self.outstanding_data == 0
            && self.rsp_tags.is_empty()
    }

    /// Entries buffered in the data FIFO (Perfetto counter-track probe;
    /// occupancy only, the contents stay private).
    #[must_use]
    pub fn fifo_len(&self) -> usize {
        self.data_fifo.len()
    }

    /// Whether the lane owns its memory port: a job is running or queued,
    /// or responses are still in flight. Unlike [`Self::is_idle`], data
    /// already buffered for the register file does not count — the
    /// streamer uses this to decide when the joiner may take over the
    /// lane's port.
    #[must_use]
    pub fn is_streaming(&self) -> bool {
        self.job.is_some()
            || self.pending.is_some()
            || self.outstanding_data > 0
            || !self.rsp_tags.is_empty()
    }

    /// The lane's shadow configuration (streamer-side joiner decode).
    #[must_use]
    pub fn shadow(&self) -> &CfgShadow {
        &self.shadow
    }

    /// Whether this lane's *read* stream has fully terminated: no read
    /// job running or queued, no responses in flight, and every
    /// delivered value consumed. The streamer folds this into the
    /// stream-terminate signal for `frep.s` loops.
    #[must_use]
    pub fn read_stream_done(&self) -> bool {
        let job_read = self.job.as_ref().is_some_and(|j| j.kind == JobKind::Read);
        let pending_read = self.pending.as_ref().is_some_and(|s| s.kind == JobKind::Read);
        !job_read
            && !pending_read
            && self.outstanding_data == 0
            && self.rsp_tags.is_empty()
            && self.data_fifo.is_empty()
    }

    // ---- configuration interface (core side) ----

    /// Writes configuration register `register`. Pointer registers launch
    /// jobs; the write is rejected (returns `false`, core must retry)
    /// when the one-deep shadow job queue is full.
    ///
    /// Malformed launches — an indirection job on a plain SSR lane, or
    /// a joiner-enabled shadow (the joiner spans two lanes and launches
    /// only through the streamer) — are gated by the streamer, which
    /// latches a `CfgFault` before the write reaches the lane; the lane
    /// itself only debug-asserts those invariants.
    pub fn cfg_write(&mut self, register: u16, value: u32) -> bool {
        let launch = |kind: JobKind, dims: usize, this: &mut Self, ptr: u32| -> bool {
            if this.pending.is_some() {
                return false;
            }
            debug_assert!(
                !this.shadow.join_enabled(),
                "joiner jobs launch through the streamer, not a single lane"
            );
            let spec = JobSpec::from_shadow(&this.shadow, kind, dims, ptr);
            if matches!(spec.pattern, Pattern::Indirect { .. }) {
                debug_assert!(
                    this.kind == LaneKind::Issr,
                    "indirection job launched on a plain SSR lane"
                );
            }
            this.pending = Some(spec);
            // Setup is single-cycle: an idle lane starts the job at once
            // (the shadow slot frees for the next setup immediately).
            this.promote_pending();
            true
        };
        if let Some(d) = reg::RPTR.iter().position(|&r| r == register) {
            launch(JobKind::Read, d + 1, self, value)
        } else if let Some(d) = reg::WPTR.iter().position(|&r| r == register) {
            launch(JobKind::Write, d + 1, self, value)
        } else {
            self.shadow.write(register, value);
            true
        }
    }

    /// Reads configuration register `register`.
    #[must_use]
    pub fn cfg_read(&self, register: u16) -> u32 {
        match register {
            reg::STATUS => {
                let done = self.is_idle();
                u32::from(done) | (u32::from(!done) << 1)
            }
            other => self.shadow.read(other),
        }
    }

    // ---- register-file interface (FPU side) ----

    /// Whether a stream read of this lane's register would succeed now.
    #[must_use]
    pub fn can_pop(&self) -> bool {
        !self.data_fifo.is_empty()
    }

    /// Pops one streamed value (a register read with stream semantics).
    ///
    /// # Panics
    /// Panics if no data is available (check [`Self::can_pop`]).
    pub fn pop(&mut self) -> u64 {
        let &(value, repeat) = self.data_fifo.front().expect("stream register read while empty");
        self.head_served += 1;
        if self.head_served > repeat {
            self.data_fifo.pop();
            self.head_served = 0;
        }
        self.stats.fpu_reads += 1;
        value
    }

    /// Whether a stream write of this lane's register would succeed now.
    #[must_use]
    pub fn can_push(&self) -> bool {
        !self.data_fifo.is_full()
    }

    /// Pushes one value into the write stream (a register write with
    /// stream semantics).
    ///
    /// # Panics
    /// Panics if the FIFO is full (check [`Self::can_push`]).
    pub fn push(&mut self, value: u64) {
        self.data_fifo.push((value, 0));
        self.stats.fpu_writes += 1;
    }

    /// Injects one value into the *read* stream from the streamer side —
    /// the path the index joiner uses to deliver matched values through
    /// this lane's register mapping.
    ///
    /// # Panics
    /// Panics if the FIFO is full (check [`Self::can_push`]).
    pub fn inject(&mut self, value: u64) {
        self.data_fifo.push((value, 0));
    }

    /// Consumes one value from the *write* stream on the streamer side —
    /// the path the sparse accumulator uses to pair FPU results with its
    /// index stream while the lane itself runs no job. Returns `None`
    /// when the FIFO is empty.
    pub fn take_write(&mut self) -> Option<u64> {
        debug_assert!(self.job.is_none(), "write-stream takeover while a lane job is running");
        self.data_fifo.pop().map(|(value, _)| value)
    }

    // ---- cycle behaviour ----

    /// Advances the lane by one cycle against its memory port.
    pub fn tick(&mut self, now: u64, port: &mut MemPort) {
        self.issued = false;
        self.blocked_on_port = false;
        self.drain_responses(now, port);
        if self.frozen {
            // Drain-only: once every in-flight response has returned,
            // drop all job and buffer state so the lane reads idle.
            self.pending = None;
            if self.rsp_tags.is_empty() {
                self.job = None;
                self.data_fifo.clear();
                self.head_served = 0;
            }
            return;
        }
        self.promote_pending();
        if port.can_send() {
            self.issued = self.issue(port);
        } else {
            self.blocked_on_port = self.wants_issue();
        }
        self.retire_if_done();
    }

    /// Whether [`Self::issue`] would send a request right now — the
    /// attribution predicate behind [`Self::attr_cause`]'s
    /// port-conflict classification (kept in lockstep with `issue`).
    fn wants_issue(&self) -> bool {
        let Some(job) = &self.job else {
            return false;
        };
        match (&job.engine, job.kind) {
            (Engine::Affine(it), JobKind::Read) => self.data_credit() && !it.is_done(),
            (Engine::Affine(it), JobKind::Write) => !self.data_fifo.is_empty() && !it.is_done(),
            (Engine::Indirect(unit), kind) => {
                let data_ready = match kind {
                    JobKind::Read => self.data_credit(),
                    JobKind::Write => !self.data_fifo.is_empty(),
                };
                (data_ready && unit.emitted < unit.count && unit.index_available())
                    || unit.idx_wants()
            }
        }
    }

    /// Classifies what this lane spent the cycle that just ticked on.
    /// Exactly one cause per cycle; the core-complex sampler records it
    /// once per ROI cycle, so the breakdown sums to the ROI length by
    /// construction.
    #[must_use]
    pub fn attr_cause(&self) -> StallCause {
        if self.frozen {
            return StallCause::Parked;
        }
        if !self.is_streaming() {
            return StallCause::Idle;
        }
        if self.issued {
            return StallCause::Active;
        }
        if self.blocked_on_port {
            return StallCause::PortConflict;
        }
        match self.job.as_ref().map(|j| j.kind) {
            // A read stream with no FIFO credit is back-pressured by
            // its consumer; otherwise it waits on upstream words
            // (index fetches, in-flight responses).
            Some(JobKind::Read) => {
                if self.data_credit() {
                    StallCause::FifoEmpty
                } else {
                    StallCause::FifoFull
                }
            }
            // A write stream starves until the producer pushes.
            Some(JobKind::Write) => StallCause::FifoEmpty,
            // No job but responses in flight: upstream latency.
            None => StallCause::FifoEmpty,
        }
    }

    fn drain_responses(&mut self, now: u64, port: &mut MemPort) {
        while let Some(rsp) = port.take_rsp(now) {
            match self.rsp_tags.pop_front().expect("response without request") {
                RspTag::DataWord { repeat } => {
                    self.outstanding_data -= 1;
                    self.data_fifo.push((rsp.data, repeat));
                }
                RspTag::IdxWord => {
                    let Some(RunningJob { engine: Engine::Indirect(unit), .. }) = &mut self.job
                    else {
                        panic!("index response without indirection job"); // gate-allow: internal invariant: responses are tagged by the job that issued them
                    };
                    unit.outstanding_idx -= 1;
                    unit.idx_fifo.push(rsp.data);
                }
            }
        }
    }

    fn promote_pending(&mut self) {
        if self.job.is_some() {
            return;
        }
        let Some(spec) = self.pending.take() else {
            return;
        };
        let engine = match spec.pattern {
            Pattern::Affine { base, dims, bounds, strides } => {
                Engine::Affine(AffineIterator::new(base, dims, bounds, strides))
            }
            Pattern::Indirect { idx_base, idx_size, shift, data_base, count } => {
                Engine::Indirect(IndirectUnit::new(idx_base, idx_size, shift, data_base, count))
            }
        };
        self.job = Some(RunningJob { kind: spec.kind, repeat: spec.repeat, engine });
    }

    /// Read-side credit: FIFO slots not yet spoken for.
    fn data_credit(&self) -> bool {
        self.data_fifo.len() + self.outstanding_data < self.data_fifo.capacity()
    }

    fn issue(&mut self, port: &mut MemPort) -> bool {
        let data_credit = self.data_credit();
        let Some(job) = &mut self.job else {
            return false;
        };
        match (&mut job.engine, job.kind) {
            (Engine::Affine(it), JobKind::Read) => {
                if data_credit && !it.is_done() {
                    let addr = it.next_addr().expect("not done");
                    port.send(MemReq::read(addr));
                    self.rsp_tags.push_back(RspTag::DataWord { repeat: job.repeat });
                    self.outstanding_data += 1;
                    self.stats.data_reads += 1;
                    return true;
                }
                false
            }
            (Engine::Affine(it), JobKind::Write) => {
                if !self.data_fifo.is_empty() && !it.is_done() {
                    let addr = it.next_addr().expect("not done");
                    let (value, _) = self.data_fifo.pop().expect("non-empty");
                    port.send(MemReq::write(addr, value));
                    self.stats.data_writes += 1;
                    return true;
                }
                false
            }
            (Engine::Indirect(unit), kind) => {
                let data_ready = match kind {
                    JobKind::Read => data_credit,
                    JobKind::Write => !self.data_fifo.is_empty(),
                };
                let data_wants = data_ready && unit.emitted < unit.count && unit.index_available();
                let idx_wants = unit.idx_wants();
                let grant_idx = match (idx_wants, data_wants) {
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => !unit.idx_won_last,
                    (false, false) => return false,
                };
                if grant_idx {
                    let addr = unit.word_it.next_addr().expect("idx_wants checked");
                    port.send(MemReq::read(addr));
                    self.rsp_tags.push_back(RspTag::IdxWord);
                    unit.outstanding_idx += 1;
                    unit.idx_won_last = true;
                    self.stats.idx_words += 1;
                } else {
                    let idx = unit.take_index();
                    let addr = unit.data_addr(idx);
                    unit.emitted += 1;
                    unit.idx_won_last = false;
                    match kind {
                        JobKind::Read => {
                            port.send(MemReq::read(addr));
                            self.rsp_tags.push_back(RspTag::DataWord { repeat: job.repeat });
                            self.outstanding_data += 1;
                            self.stats.data_reads += 1;
                        }
                        JobKind::Write => {
                            let (value, _) = self.data_fifo.pop().expect("data_ready checked");
                            port.send(MemReq::write(addr, value));
                            self.stats.data_writes += 1;
                        }
                    }
                }
                true
            }
        }
    }

    fn retire_if_done(&mut self) {
        let done = match &self.job {
            Some(job) => match &job.engine {
                Engine::Affine(it) => it.is_done(),
                Engine::Indirect(unit) => unit.emitted == unit.count,
            },
            None => false,
        };
        if done {
            if let Some(RunningJob { engine: Engine::Indirect(unit), .. }) = &self.job {
                debug_assert_eq!(unit.outstanding_idx, 0, "index words still in flight at retire");
            }
            self.job = None;
            self.stats.jobs += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::idx_cfg_word;
    use issr_mem::tcdm::Tcdm;

    const BASE: u32 = 0x0010_0000;

    fn run_lane(lane: &mut Lane, tcdm: &mut Tcdm, max_cycles: u64) -> Vec<u64> {
        let mut port = MemPort::new();
        let mut out = Vec::new();
        for now in 0..max_cycles {
            lane.tick(now, &mut port);
            tcdm.tick(now, &mut [&mut port], &[]);
            while lane.can_pop() {
                out.push(lane.pop());
            }
            if lane.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn affine_read_streams_contiguous_values() {
        let mut tcdm = Tcdm::ideal(BASE, 0x1000);
        for i in 0..16u32 {
            tcdm.array_mut().store_u64(BASE + i * 8, u64::from(i) + 100);
        }
        let mut lane = Lane::new(LaneKind::Ssr);
        assert!(lane.cfg_write(reg::BOUNDS[0], 15));
        assert!(lane.cfg_write(reg::STRIDES[0], 8));
        assert!(lane.cfg_write(reg::RPTR[0], BASE));
        let out = run_lane(&mut lane, &mut tcdm, 200);
        assert_eq!(out, (100..116).collect::<Vec<u64>>());
        assert_eq!(lane.stats().data_reads, 16);
        assert_eq!(lane.stats().jobs, 1);
    }

    #[test]
    fn affine_read_sustains_one_element_per_cycle() {
        let n = 64u32;
        let mut tcdm = Tcdm::ideal(BASE, 0x1000);
        for i in 0..n {
            tcdm.array_mut().store_u64(BASE + i * 8, u64::from(i));
        }
        let mut lane = Lane::new(LaneKind::Ssr);
        lane.cfg_write(reg::BOUNDS[0], n - 1);
        lane.cfg_write(reg::STRIDES[0], 8);
        lane.cfg_write(reg::RPTR[0], BASE);
        let mut port = MemPort::new();
        let mut popped = 0u32;
        let mut cycles = 0u64;
        for now in 0..500u64 {
            lane.tick(now, &mut port);
            tcdm.tick(now, &mut [&mut port], &[]);
            if lane.can_pop() {
                lane.pop();
                popped += 1;
            }
            cycles = now + 1;
            if popped == n {
                break;
            }
        }
        // 1 element/cycle steady state with a couple of warm-up cycles.
        assert!(cycles <= u64::from(n) + 4, "took {cycles} cycles for {n} elements");
    }

    #[test]
    fn repeat_delivers_each_element_multiple_times() {
        let mut tcdm = Tcdm::ideal(BASE, 0x1000);
        tcdm.array_mut().store_u64(BASE, 7);
        tcdm.array_mut().store_u64(BASE + 8, 9);
        let mut lane = Lane::new(LaneKind::Ssr);
        lane.cfg_write(reg::REPEAT, 2);
        lane.cfg_write(reg::BOUNDS[0], 1);
        lane.cfg_write(reg::STRIDES[0], 8);
        lane.cfg_write(reg::RPTR[0], BASE);
        let out = run_lane(&mut lane, &mut tcdm, 100);
        assert_eq!(out, [7, 7, 7, 9, 9, 9]);
        // Only two memory fetches despite six register reads.
        assert_eq!(lane.stats().data_reads, 2);
        assert_eq!(lane.stats().fpu_reads, 6);
    }

    #[test]
    fn affine_write_stores_stream() {
        let mut tcdm = Tcdm::ideal(BASE, 0x1000);
        let mut lane = Lane::new(LaneKind::Ssr);
        lane.cfg_write(reg::BOUNDS[0], 3);
        lane.cfg_write(reg::STRIDES[0], 16);
        lane.cfg_write(reg::WPTR[0], BASE + 8);
        let mut port = MemPort::new();
        let mut pushed = 0u64;
        for now in 0..50u64 {
            if pushed < 4 && lane.can_push() {
                lane.push(pushed + 50);
                pushed += 1;
            }
            lane.tick(now, &mut port);
            tcdm.tick(now, &mut [&mut port], &[]);
            if pushed == 4 && lane.is_idle() {
                break;
            }
        }
        assert!(lane.is_idle());
        for i in 0..4u32 {
            assert_eq!(tcdm.array().load_u64(BASE + 8 + i * 16), u64::from(i) + 50);
        }
        assert_eq!(lane.stats().data_writes, 4);
    }

    #[test]
    fn indirect_read_gathers_by_index() {
        let mut tcdm = Tcdm::ideal(BASE, 0x4000);
        // Dense data at BASE+0x2000; indices at BASE+0x1000.
        let data = BASE + 0x2000;
        for i in 0..32u32 {
            tcdm.array_mut().store_u64(data + i * 8, u64::from(i) * 10);
        }
        let idcs: [u16; 6] = [5, 0, 31, 2, 2, 17];
        let idx_base = BASE + 0x1000;
        tcdm.array_mut().store_u16_slice(idx_base, &idcs);
        let mut lane = Lane::new(LaneKind::Issr);
        lane.cfg_write(reg::BOUNDS[0], 5);
        lane.cfg_write(reg::IDX_CFG, idx_cfg_word(IndexSize::U16, 0));
        lane.cfg_write(reg::DATA_BASE, data);
        lane.cfg_write(reg::RPTR[0], idx_base);
        let out = run_lane(&mut lane, &mut tcdm, 200);
        assert_eq!(out, [50, 0, 310, 20, 20, 170]);
        assert_eq!(lane.stats().idx_words, 2);
        assert_eq!(lane.stats().data_reads, 6);
    }

    #[test]
    fn indirect_read_unaligned_index_base() {
        let mut tcdm = Tcdm::ideal(BASE, 0x4000);
        let data = BASE + 0x2000;
        for i in 0..8u32 {
            tcdm.array_mut().store_u64(data + i * 8, u64::from(i) + 1);
        }
        // Index array starts mid-word.
        let idx_base = BASE + 0x1006;
        tcdm.array_mut().store_u16_slice(idx_base, &[3, 1, 4]);
        let mut lane = Lane::new(LaneKind::Issr);
        lane.cfg_write(reg::BOUNDS[0], 2);
        lane.cfg_write(reg::IDX_CFG, idx_cfg_word(IndexSize::U16, 0));
        lane.cfg_write(reg::DATA_BASE, data);
        lane.cfg_write(reg::RPTR[0], idx_base);
        let out = run_lane(&mut lane, &mut tcdm, 200);
        assert_eq!(out, [4, 2, 5]);
    }

    #[test]
    fn indirect_read_32bit_indices() {
        let mut tcdm = Tcdm::ideal(BASE, 0x4000);
        let data = BASE + 0x2000;
        for i in 0..64u32 {
            tcdm.array_mut().store_u64(data + i * 8, u64::from(i) * 3);
        }
        let idx_base = BASE + 0x1000;
        tcdm.array_mut().store_u32_slice(idx_base, &[63, 0, 7]);
        let mut lane = Lane::new(LaneKind::Issr);
        lane.cfg_write(reg::BOUNDS[0], 2);
        lane.cfg_write(reg::IDX_CFG, idx_cfg_word(IndexSize::U32, 0));
        lane.cfg_write(reg::DATA_BASE, data);
        lane.cfg_write(reg::RPTR[0], idx_base);
        let out = run_lane(&mut lane, &mut tcdm, 200);
        assert_eq!(out, [189, 0, 21]);
    }

    #[test]
    fn indirect_shift_addresses_higher_axes() {
        // shift = 1: each index selects a 2-word row.
        let mut tcdm = Tcdm::ideal(BASE, 0x4000);
        let data = BASE + 0x2000;
        for i in 0..16u32 {
            tcdm.array_mut().store_u64(data + i * 8, u64::from(i));
        }
        let idx_base = BASE + 0x1000;
        tcdm.array_mut().store_u16_slice(idx_base, &[0, 3]);
        let mut lane = Lane::new(LaneKind::Issr);
        lane.cfg_write(reg::BOUNDS[0], 1);
        lane.cfg_write(reg::IDX_CFG, idx_cfg_word(IndexSize::U16, 1));
        lane.cfg_write(reg::DATA_BASE, data);
        lane.cfg_write(reg::RPTR[0], idx_base);
        let out = run_lane(&mut lane, &mut tcdm, 200);
        // idx 0 -> word 0; idx 3 -> word 6 (3 << 1).
        assert_eq!(out, [0, 6]);
    }

    #[test]
    fn indirect_write_scatters() {
        let mut tcdm = Tcdm::ideal(BASE, 0x4000);
        let data = BASE + 0x2000;
        let idx_base = BASE + 0x1000;
        tcdm.array_mut().store_u16_slice(idx_base, &[4, 1, 9]);
        let mut lane = Lane::new(LaneKind::Issr);
        lane.cfg_write(reg::BOUNDS[0], 2);
        lane.cfg_write(reg::IDX_CFG, idx_cfg_word(IndexSize::U16, 0));
        lane.cfg_write(reg::DATA_BASE, data);
        lane.cfg_write(reg::WPTR[0], idx_base);
        let mut port = MemPort::new();
        let values = [111u64, 222, 333];
        let mut sent = 0;
        for now in 0..100u64 {
            if sent < values.len() && lane.can_push() {
                lane.push(values[sent]);
                sent += 1;
            }
            lane.tick(now, &mut port);
            tcdm.tick(now, &mut [&mut port], &[]);
            if sent == values.len() && lane.is_idle() {
                break;
            }
        }
        assert!(lane.is_idle());
        assert_eq!(tcdm.array().load_u64(data + 4 * 8), 111);
        assert_eq!(tcdm.array().load_u64(data + 8), 222);
        assert_eq!(tcdm.array().load_u64(data + 9 * 8), 333);
    }

    #[test]
    fn indirect_16bit_sustains_four_fifths() {
        let n = 400u32;
        let mut tcdm = Tcdm::ideal(BASE, 0x8000);
        let data = BASE + 0x4000;
        for i in 0..512u32 {
            tcdm.array_mut().store_u64(data + i * 8, u64::from(i));
        }
        let idx_base = BASE + 0x1000;
        let idcs: Vec<u16> = (0..n as u16).map(|i| (i * 7) % 512).collect();
        tcdm.array_mut().store_u16_slice(idx_base, &idcs);
        let mut lane = Lane::new(LaneKind::Issr);
        lane.cfg_write(reg::BOUNDS[0], n - 1);
        lane.cfg_write(reg::IDX_CFG, idx_cfg_word(IndexSize::U16, 0));
        lane.cfg_write(reg::DATA_BASE, data);
        lane.cfg_write(reg::RPTR[0], idx_base);
        let mut port = MemPort::new();
        let mut popped = 0u32;
        let mut cycles = 0u64;
        for now in 0..5000u64 {
            lane.tick(now, &mut port);
            tcdm.tick(now, &mut [&mut port], &[]);
            if lane.can_pop() {
                lane.pop();
                popped += 1;
            }
            cycles = now + 1;
            if popped == n {
                break;
            }
        }
        let rate = f64::from(n) / cycles as f64;
        assert!(
            (rate - 0.8).abs() < 0.02,
            "16-bit indirection rate {rate:.3}, expected ~0.80 over {cycles} cycles"
        );
    }

    #[test]
    fn indirect_32bit_sustains_two_thirds() {
        let n = 400u32;
        let mut tcdm = Tcdm::ideal(BASE, 0x8000);
        let data = BASE + 0x4000;
        for i in 0..512u32 {
            tcdm.array_mut().store_u64(data + i * 8, u64::from(i));
        }
        let idx_base = BASE + 0x1000;
        let idcs: Vec<u32> = (0..n).map(|i| (i * 5) % 512).collect();
        tcdm.array_mut().store_u32_slice(idx_base, &idcs);
        let mut lane = Lane::new(LaneKind::Issr);
        lane.cfg_write(reg::BOUNDS[0], n - 1);
        lane.cfg_write(reg::IDX_CFG, idx_cfg_word(IndexSize::U32, 0));
        lane.cfg_write(reg::DATA_BASE, data);
        lane.cfg_write(reg::RPTR[0], idx_base);
        let mut port = MemPort::new();
        let mut popped = 0u32;
        let mut cycles = 0u64;
        for now in 0..5000u64 {
            lane.tick(now, &mut port);
            tcdm.tick(now, &mut [&mut port], &[]);
            if lane.can_pop() {
                lane.pop();
                popped += 1;
            }
            cycles = now + 1;
            if popped == n {
                break;
            }
        }
        let rate = f64::from(n) / cycles as f64;
        assert!(
            (rate - 2.0 / 3.0).abs() < 0.02,
            "32-bit indirection rate {rate:.3}, expected ~0.67 over {cycles} cycles"
        );
    }

    #[test]
    fn shadow_job_queued_while_running() {
        let mut tcdm = Tcdm::ideal(BASE, 0x1000);
        for i in 0..8u32 {
            tcdm.array_mut().store_u64(BASE + i * 8, u64::from(i));
        }
        let mut lane = Lane::new(LaneKind::Ssr);
        lane.cfg_write(reg::BOUNDS[0], 3);
        lane.cfg_write(reg::STRIDES[0], 8);
        assert!(lane.cfg_write(reg::RPTR[0], BASE));
        // Queue a second job immediately (shadow regs reused).
        assert!(lane.cfg_write(reg::RPTR[0], BASE + 32));
        // A third launch must be rejected until the queue drains.
        assert!(!lane.cfg_write(reg::RPTR[0], BASE));
        let out = run_lane(&mut lane, &mut tcdm, 300);
        assert_eq!(out, [0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(lane.stats().jobs, 2);
    }

    #[test]
    #[should_panic(expected = "plain SSR lane")]
    fn indirection_on_ssr_lane_panics() {
        let mut lane = Lane::new(LaneKind::Ssr);
        lane.cfg_write(reg::IDX_CFG, idx_cfg_word(IndexSize::U16, 0));
        lane.cfg_write(reg::BOUNDS[0], 0);
        let _ = lane.cfg_write(reg::RPTR[0], BASE);
    }

    #[test]
    fn status_register_reflects_idle() {
        let lane = Lane::new(LaneKind::Issr);
        assert_eq!(lane.cfg_read(reg::STATUS), 1);
    }
}
