//! The index serializer (Fig. 1, block 5).
//!
//! Indirection fetches the index array as aligned 64-bit words; the
//! serializer extracts the 16- or 32-bit indices from each buffered word,
//! backed by a two-bit short-offset counter (block 6). Arbitrary index
//! array alignment is supported: the first word may contain leading
//! bytes that belong to the previous array, which the serializer skips.

/// Width of the indices in the index array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IndexSize {
    /// 16-bit indices: four per 64-bit word (peak data utilization 4/5).
    U16,
    /// 32-bit indices: two per 64-bit word (peak data utilization 2/3).
    U32,
}

impl IndexSize {
    /// Bytes per index.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            IndexSize::U16 => 2,
            IndexSize::U32 => 4,
        }
    }

    /// Indices contained in one 64-bit word.
    #[must_use]
    pub fn per_word(self) -> u32 {
        8 / self.bytes()
    }

    /// Peak fraction of data-mover cycles available for data words when
    /// index and data fetches share one port (§II-B): 4/5 for 16-bit,
    /// 2/3 for 32-bit.
    #[must_use]
    pub fn peak_data_utilization(self) -> f64 {
        let n = f64::from(self.per_word());
        n / (n + 1.0)
    }
}

/// Extracts indices from buffered 64-bit index words.
#[derive(Clone, Debug)]
pub struct IndexSerializer {
    size: IndexSize,
    /// Sub-word element offset into the current word (the short-offset
    /// counter).
    soffs: u32,
    /// Indices still to emit.
    remaining: u64,
    current: Option<u64>,
}

impl IndexSerializer {
    /// Creates a serializer for `total` indices starting at byte address
    /// `base` (any `size`-aligned address; word alignment not required).
    #[must_use]
    pub fn new(size: IndexSize, base: u32, total: u64) -> Self {
        Self { size, soffs: (base % 8) / size.bytes(), remaining: total, current: None }
    }

    /// Number of 64-bit word fetches needed to cover the whole stream,
    /// including alignment slack.
    #[must_use]
    pub fn words_needed(size: IndexSize, base: u32, total: u64) -> u64 {
        if total == 0 {
            return 0;
        }
        let first = u64::from(base) & !7;
        let end = u64::from(base) + total * u64::from(size.bytes());
        (end - first).div_ceil(8)
    }

    /// Whether all indices have been emitted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Whether the serializer needs a fresh word before it can emit.
    #[must_use]
    pub fn wants_word(&self) -> bool {
        self.remaining > 0 && self.current.is_none()
    }

    /// Indices still extractable from the currently loaded word.
    #[must_use]
    pub fn buffered(&self) -> u64 {
        match self.current {
            Some(_) => u64::from(self.size.per_word() - self.soffs).min(self.remaining),
            None => 0,
        }
    }

    /// Whether an index can be emitted right now.
    #[must_use]
    pub fn index_ready(&self) -> bool {
        self.buffered() > 0
    }

    /// Loads the next fetched index word.
    ///
    /// # Panics
    /// Panics if the previous word has not been fully consumed.
    pub fn load_word(&mut self, word: u64) {
        assert!(self.current.is_none(), "serializer word still in use"); // gate-allow: documented precondition; callers drain before reloading
        self.current = Some(word);
    }

    /// Extracts the next index if one is available.
    pub fn next_index(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        let word = self.current?;
        let idx = match self.size {
            IndexSize::U16 => u32::from((word >> (self.soffs * 16)) as u16),
            IndexSize::U32 => (word >> (self.soffs * 32)) as u32,
        };
        self.soffs += 1;
        self.remaining -= 1;
        if self.soffs == self.size.per_word() || self.remaining == 0 {
            self.soffs = 0;
            self.current = None;
        }
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack16(v: [u16; 4]) -> u64 {
        u64::from(v[0]) | u64::from(v[1]) << 16 | u64::from(v[2]) << 32 | u64::from(v[3]) << 48
    }

    #[test]
    fn sixteen_bit_aligned_stream() {
        let mut s = IndexSerializer::new(IndexSize::U16, 0x100, 6);
        assert!(s.wants_word());
        s.load_word(pack16([1, 2, 3, 4]));
        assert_eq!((0..4).map(|_| s.next_index().unwrap()).collect::<Vec<_>>(), [1, 2, 3, 4]);
        assert!(s.wants_word());
        s.load_word(pack16([5, 6, 7, 8]));
        assert_eq!(s.next_index(), Some(5));
        assert_eq!(s.next_index(), Some(6));
        assert!(s.is_done());
        assert_eq!(s.next_index(), None);
    }

    #[test]
    fn sixteen_bit_unaligned_start() {
        // Array starts at byte 4 of its first word: skip two elements.
        let mut s = IndexSerializer::new(IndexSize::U16, 0x104, 3);
        s.load_word(pack16([0xAAAA, 0xBBBB, 10, 11]));
        assert_eq!(s.next_index(), Some(10));
        assert_eq!(s.next_index(), Some(11));
        assert!(s.wants_word());
        s.load_word(pack16([12, 0, 0, 0]));
        assert_eq!(s.next_index(), Some(12));
        assert!(s.is_done());
    }

    #[test]
    fn thirty_two_bit_unaligned_start() {
        let mut s = IndexSerializer::new(IndexSize::U32, 0x10C, 2);
        s.load_word(u64::from(7u32) << 32 | 0xFFFF_FFFF);
        assert_eq!(s.next_index(), Some(7));
        s.load_word(u64::from(9u32));
        assert_eq!(s.next_index(), Some(9));
        assert!(s.is_done());
    }

    #[test]
    fn words_needed_accounts_for_alignment() {
        // 4 aligned 16-bit indices: exactly one word.
        assert_eq!(IndexSerializer::words_needed(IndexSize::U16, 0x100, 4), 1);
        // Same 4 starting at +2: spills into a second word.
        assert_eq!(IndexSerializer::words_needed(IndexSize::U16, 0x102, 4), 2);
        // 2 aligned 32-bit: one word; unaligned: two.
        assert_eq!(IndexSerializer::words_needed(IndexSize::U32, 0x100, 2), 1);
        assert_eq!(IndexSerializer::words_needed(IndexSize::U32, 0x104, 2), 2);
        assert_eq!(IndexSerializer::words_needed(IndexSize::U16, 0x100, 0), 0);
    }

    #[test]
    fn peak_utilization_limits() {
        assert!((IndexSize::U16.peak_data_utilization() - 0.8).abs() < 1e-12);
        assert!((IndexSize::U32.peak_data_utilization() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_last_word_releases_buffer() {
        let mut s = IndexSerializer::new(IndexSize::U16, 0, 1);
        s.load_word(pack16([42, 1, 2, 3]));
        assert_eq!(s.next_index(), Some(42));
        assert!(s.is_done());
        assert!(!s.wants_word());
    }
}
