//! The sparse accumulator (SpAcc): the write-stream side of the
//! sparse-sparse subsystem.
//!
//! Where the [`crate::joiner`] makes the *read* side of a lane pair
//! stream-semantic over two sparse operands, the SpAcc does the same for
//! the *write* side: it turns a lane's write stream into a **sparse
//! output builder**, the missing piece between the joiner's merge
//! primitives and row-wise Gustavson SpGEMM (cf. SparseZipper,
//! arXiv:2502.11353, and the symmetric write streamer of the SSSR
//! follow-up, arXiv:2305.05559). Two job kinds, launched through the
//! `ACC_*` shadow registers and sequenced in order through the familiar
//! one-deep shadow queue:
//!
//! * a **feed** job pairs `count` indices — fetched from memory over the
//!   lane port with the lane's own word-fetch / decoupling-FIFO /
//!   [`IndexSerializer`] machinery — with `count` values arriving
//!   through the mapped write-stream register, and merges the resulting
//!   (index, value) stream into an internal *row buffer*. The merge is
//!   the joiner's `Union` datapath pointed at the buffer: one comparator
//!   step per cycle walks the (sorted) buffer and the (sorted) incoming
//!   stream together, adding values on index matches and inserting
//!   otherwise, so duplicate indices merge **on the fly** and the buffer
//!   stays sorted and duplicate-free. Back-pressure is natural: a stalled
//!   merge stops popping the write FIFO, which stalls the FPU's stream
//!   writes exactly like a busy write job;
//! * a **drain** job streams the buffer out as a compressed row —
//!   `idcs[]` packed into 64-bit words (byte strobes cover partial words
//!   at unaligned row boundaries) followed by `vals[]` — at one memory
//!   word per cycle through the same port, then clears the buffer for
//!   the next row. The row length is read back through `ACC_NNZ`, giving
//!   kernels the data-dependent nonzero count they need to build CSR row
//!   pointers (grow-and-pack).
//!
//! Feed input must be sorted (non-decreasing) *within* one job, as every
//! CSR row expansion naturally is; separate feed jobs may overlap
//! arbitrarily — that is exactly the accumulation case the merge exists
//! for.
//!
//! Two later extensions round the unit out:
//!
//! * **count-only feeds** (`ACC_CFG` bit 1) run the same merge over the
//!   index stream alone — no write-stream traffic — so `ACC_NNZ` yields
//!   a row's data-dependent nonzero count without materializing values:
//!   the on-device *symbolic phase* of two-pass SpGEMM (cleared per row
//!   with `ACC_CLEAR`; draining in this mode is a configuration fault);
//! * **double-buffered row storage**: a drain snapshots the merged row
//!   at promotion, so the next row's first feed merges into the freed
//!   buffer while the drain still writes — the two jobs share the lane
//!   port round-robin, and [`SpAccStats::overlap_cycles`] counts the
//!   won overlap.
//!
//! # Mid-stream faults and the grow-and-retry protocol
//!
//! No input can panic the unit: every mid-stream failure latches a
//! structured [`StreamFaultKind`] instead (surfaced by the streamer as a
//! [`crate::fault::StreamFault`] with unit [`crate::fault::StreamUnit::SpAcc`],
//! which the core takes as a trap):
//!
//! * [`StreamFaultKind::Overflow`] — the merged row's length exceeded
//!   the configured `ACC_BUF_CAP` (the fault carries the capacity);
//! * [`StreamFaultKind::Unsorted`] — a feed delivered a decreasing
//!   index within one job;
//! * [`StreamFaultKind::Stall`] — the progress watchdog expired: a job
//!   was in flight but no request, response, merge step or retire
//!   happened for [`crate::fault::STREAM_WATCHDOG_RESET`] cycles (a
//!   value feed whose FPU writes never arrive, a drain that cannot
//!   reach memory) — the deadlock becomes a latched fault, not a hang.
//!
//! On a fault the unit **freezes**: the in-flight feed aborts and the
//! row buffer is restored to its **pre-feed checkpoint** (`FeedRun`
//! keeps the old row untouched while the merge builds the new one), the
//! queued job is dropped, in-flight index responses drain into a sink,
//! and stray write-stream values are discarded so the FPU can drain.
//! Launches are refused until [`SpAcc::clear_fault`] re-arms the unit.
//!
//! The checkpoint makes [`StreamFaultKind::Overflow`] *recoverable*:
//!
//! 1. size `ACC_BUF_CAP` optimistically (SparseZipper's strategy — no
//!    worst-case expansion bound up front);
//! 2. on an overflow trap, grow the capacity (the kernels double it,
//!    clamped to the output width) — the row buffer still holds the
//!    pre-feed state, so the faulted row's feeds can simply be
//!    **replayed from their checkpointed cursor**;
//! 3. re-run the faulted feeds; every other row's state is unaffected.
//!
//! `issr-kernels::spgemm::run_spgemm_recover` and
//! `cluster_spgemm::run_cluster_spgemm_recover` drive exactly this loop
//! from the host harness, and the unit tests below replay a faulted
//! feed in place.

use crate::affine::AffineIterator;
use crate::cfg::{AccDrainSpec, AccFeedSpec};
use crate::fault::{StreamFaultKind, STREAM_WATCHDOG_RESET};
use crate::fifo::Fifo;
use crate::lane::{Lane, IDX_FIFO_DEPTH};
use crate::serializer::{IndexSerializer, IndexSize};
use issr_mem::port::{MemPort, MemReq};
use std::collections::VecDeque;

/// The streamer lane whose port and write stream the SpAcc borrows
/// (lane 1, mirroring the joiner's span over lanes 0/1: reads arrive on
/// the pair, the compressed row leaves through the indirection lane).
pub const SPACC_LANE: usize = 1;

/// Activity counters of the sparse accumulator, for verification and
/// the benchmark reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpAccStats {
    /// Feed jobs completed.
    pub feeds: u64,
    /// Count-only (symbolic) feed jobs among [`Self::feeds`].
    pub count_feeds: u64,
    /// Drain jobs completed.
    pub drains: u64,
    /// (index, value) pairs consumed from the input streams.
    pub pairs_in: u64,
    /// Pairs whose index hit an existing entry (merged with an add).
    pub merges: u64,
    /// Comparator merge steps (pair consumption and buffer walks).
    pub steps: u64,
    /// Index words fetched for feed jobs.
    pub idx_words: u64,
    /// Memory words written by drain jobs.
    pub out_words: u64,
    /// High-water row-buffer occupancy.
    pub peak_nnz: u64,
    /// Cycles where a drain and a feed were both in flight (the
    /// double-buffer overlap the second row buffer buys).
    pub overlap_cycles: u64,
    /// Cycles a granted drain write was deferred to a feed index fetch
    /// by the shared-port round-robin (contended overlap cycles).
    pub port_shared: u64,
}

impl issr_trace::StatMerge for SpAccStats {
    fn merge_from(&mut self, other: &Self) {
        self.feeds += other.feeds;
        self.count_feeds += other.count_feeds;
        self.drains += other.drains;
        self.pairs_in += other.pairs_in;
        self.merges += other.merges;
        self.steps += other.steps;
        self.idx_words += other.idx_words;
        self.out_words += other.out_words;
        self.peak_nnz = self.peak_nnz.max(other.peak_nnz);
        self.overlap_cycles += other.overlap_cycles;
        self.port_shared += other.port_shared;
    }
}

/// A queued SpAcc job.
#[derive(Clone, Copy, Debug)]
enum AccJob {
    Feed(AccFeedSpec),
    Drain(AccDrainSpec),
}

/// Outcome of one feed cycle.
#[derive(Clone, Copy, Debug)]
enum FeedStep {
    /// Still merging (or no feed in flight).
    Busy,
    /// The feed retired (row buffer swapped in).
    Done,
    /// A mid-stream fault (overflow, unsorted input) must latch.
    Fault(StreamFaultKind),
}

/// An in-flight feed job: index fetch state plus the two-cursor merge.
#[derive(Debug)]
struct FeedRun {
    word_it: AffineIterator,
    idx_fifo: Fifo<u64>,
    serializer: IndexSerializer,
    outstanding_idx: usize,
    idx_size: IndexSize,
    /// Head of the incoming index stream, if pulled.
    head: Option<u32>,
    /// Head of the incoming value stream, if pulled from the lane FIFO.
    val_head: Option<f64>,
    /// Indices taken from the serializer (head included).
    taken: u64,
    /// Pairs fully consumed by the merge.
    consumed: u64,
    count: u64,
    /// Count-only (symbolic) feed: no value stream is consumed.
    count_only: bool,
    /// Row-buffer capacity in elements (checked at retire).
    cap: u32,
    /// The pre-feed row buffer being merged against.
    old: Vec<(u32, f64)>,
    /// Merge cursor into `old`.
    pos: usize,
    /// The merged row being built (becomes the row buffer at retire).
    new: Vec<(u32, f64)>,
}

impl FeedRun {
    fn new(spec: &AccFeedSpec, old: Vec<(u32, f64)>) -> Self {
        let words = IndexSerializer::words_needed(spec.idx_size, spec.idx_base, spec.count);
        let mut word_it = AffineIterator::linear(spec.idx_base & !7, words.max(1) as u32, 8);
        if words == 0 {
            while word_it.next_addr().is_some() {}
        }
        Self {
            word_it,
            idx_fifo: Fifo::new(IDX_FIFO_DEPTH),
            serializer: IndexSerializer::new(spec.idx_size, spec.idx_base, spec.count),
            outstanding_idx: 0,
            idx_size: spec.idx_size,
            head: None,
            val_head: None,
            taken: 0,
            consumed: 0,
            count: spec.count,
            count_only: spec.count_only,
            cap: spec.cap,
            old,
            pos: 0,
            new: Vec::new(),
        }
    }

    /// The lane's just-in-time index fetch policy (see [`crate::lane`]).
    fn idx_wants(&self) -> bool {
        let per_word = u64::from(self.idx_size.per_word());
        let headroom = u64::from(self.head.is_some())
            + self.serializer.buffered()
            + (self.idx_fifo.len() as u64 + self.outstanding_idx as u64) * per_word;
        !self.word_it.is_done()
            && self.idx_fifo.free() > self.outstanding_idx
            && headroom <= per_word
    }
}

/// An in-flight drain job: the precomputed word-write sequence.
#[derive(Debug)]
struct DrainRun {
    reqs: VecDeque<MemReq>,
}

impl DrainRun {
    /// Plans the compressed-row writes: indices packed into 64-bit words
    /// (strobed at partial boundary words), then one word per value.
    /// Alignment is guaranteed by the streamer, which latches a
    /// `CfgFault` on misaligned drain launches before they reach the
    /// unit.
    fn new(spec: &AccDrainSpec, row: &[(u32, f64)]) -> Self {
        let ib = spec.idx_size.bytes();
        debug_assert_eq!(spec.idx_out % ib, 0, "index output base must be element aligned");
        debug_assert_eq!(spec.val_out % 8, 0, "value output base must be word aligned");
        let mut reqs = VecDeque::new();
        let mut word: Option<(u32, u64, u8)> = None;
        for (j, &(idx, _)) in row.iter().enumerate() {
            for b in 0..ib {
                let a = spec.idx_out + j as u32 * ib + b;
                let aligned = a & !7;
                match &mut word {
                    Some((w, data, strb)) if *w == aligned => {
                        *data |= u64::from((idx >> (8 * b)) & 0xFF) << ((a % 8) * 8);
                        *strb |= 1 << (a % 8);
                    }
                    current => {
                        if let Some((w, data, strb)) = current.take() {
                            reqs.push_back(MemReq::write_strb(w, data, strb));
                        }
                        *current = Some((
                            aligned,
                            u64::from((idx >> (8 * b)) & 0xFF) << ((a % 8) * 8),
                            1 << (a % 8),
                        ));
                    }
                }
            }
        }
        if let Some((w, data, strb)) = word {
            reqs.push_back(MemReq::write_strb(w, data, strb));
        }
        for (j, &(_, v)) in row.iter().enumerate() {
            reqs.push_back(MemReq::write(spec.val_out + j as u32 * 8, v.to_bits()));
        }
        Self { reqs }
    }
}

/// The sparse accumulator unit of one streamer.
///
/// Row storage is **double-buffered**: a drain snapshots the merged row
/// into its own write queue at promotion, freeing the live buffer so the
/// next row's first feed starts merging while the drain is still writing
/// the previous row out (the two jobs arbitrate the shared lane port
/// round-robin). [`SpAcc::set_double_buffered`] reverts to the
/// single-buffer behaviour (feed waits for the drain), which the
/// benchmark uses to report the overlap gain.
#[derive(Debug)]
pub struct SpAcc {
    /// The accumulated row: sorted, duplicate-free (index, value) pairs.
    row: Vec<(u32, f64)>,
    /// In-flight feed (fetch/merge state; boxed — it is large).
    feed: Option<Box<FeedRun>>,
    /// In-flight drain (its snapshot write queue).
    drain: Option<DrainRun>,
    /// One-deep shadow queue (like a lane's pending slot).
    pending: Option<AccJob>,
    /// Whether a feed may start while a drain is still writing.
    double_buffered: bool,
    /// Round-robin marker for the shared port: `true` if the drain won
    /// the last contended cycle.
    drain_won_last: bool,
    /// The latched mid-stream fault, if any ([`Self::fault`]).
    fault: Option<StreamFaultKind>,
    /// Frozen (faulted here, or by a fault elsewhere in the streamer):
    /// jobs aborted, launches refused, in-flight traffic sinks.
    frozen: bool,
    /// Progress-watchdog threshold in cycles ([`Self::set_watchdog`]).
    watchdog: u64,
    /// Consecutive busy cycles without progress.
    stall: u64,
    /// Progress happened this cycle (request, response, merge step,
    /// promotion or retire) — resets the stall counter.
    progress: bool,
    /// Whether the last [`Self::tick`] made progress — the attribution
    /// probe's activity signal (latched before `progress` resets).
    advanced: bool,
    /// Index-word responses still in flight for an aborted feed,
    /// discarded as they arrive.
    sink_rsps: usize,
    stats: SpAccStats,
}

impl Default for SpAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl SpAcc {
    /// Creates an idle, double-buffered unit with an empty row buffer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            row: Vec::new(),
            feed: None,
            drain: None,
            pending: None,
            double_buffered: true,
            drain_won_last: false,
            fault: None,
            frozen: false,
            watchdog: STREAM_WATCHDOG_RESET,
            stall: 0,
            progress: false,
            advanced: false,
            sink_rsps: 0,
            stats: SpAccStats::default(),
        }
    }

    /// The latched mid-stream fault, if the unit froze on one.
    #[must_use]
    pub fn fault(&self) -> Option<StreamFaultKind> {
        self.fault
    }

    /// Re-arms a faulted unit: clears the fault and unfreezes, so a
    /// corrected job (e.g. a replayed feed after growing the capacity)
    /// can launch. The row buffer still holds the pre-fault checkpoint.
    pub fn clear_fault(&mut self) {
        self.fault = None;
        self.frozen = false;
        self.stall = 0;
    }

    /// Sets the progress-watchdog threshold (cycles without progress
    /// before a [`StreamFaultKind::Stall`] latches). Tests shrink it;
    /// resets to [`STREAM_WATCHDOG_RESET`].
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.watchdog = cycles.max(1);
    }

    /// Freezes the unit (a fault here or elsewhere in the streamer):
    /// the in-flight feed aborts and the row buffer is restored to its
    /// pre-feed checkpoint, the in-flight drain and the queued job are
    /// dropped, and subsequent launches are refused. In-flight index
    /// responses drain into a sink over the following cycles.
    pub fn freeze(&mut self) {
        self.frozen = true;
        self.pending = None;
        if let Some(run) = self.feed.take() {
            let run = *run;
            self.row = run.old;
            self.sink_rsps += run.outstanding_idx;
        }
        self.drain = None;
    }

    fn latch_fault(&mut self, kind: StreamFaultKind) {
        if self.fault.is_none() {
            self.fault = Some(kind);
        }
        self.freeze();
    }

    /// Selects single- or double-buffered row storage (hardware knob;
    /// the benchmark sweeps both to report the overlap delta).
    pub fn set_double_buffered(&mut self, enabled: bool) {
        self.double_buffered = enabled;
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> SpAccStats {
        self.stats
    }

    /// Current row-buffer occupancy (the `ACC_NNZ` readback). Stable
    /// once all feeds retired ([`Self::feeds_idle`]) — an in-flight
    /// drain holds its own snapshot and does not disturb it.
    #[must_use]
    pub fn nnz(&self) -> u64 {
        self.row.len() as u64
    }

    /// Whether a job is running or queued.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.feed.is_some() || self.drain.is_some() || self.pending.is_some()
    }

    /// Whether the unit has fully drained (no job running or queued).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        !self.busy()
    }

    /// Whether every feed job has retired (drains may still be writing).
    /// The `ACC_STATUS` feed-done bit kernels poll before `ACC_NNZ`.
    #[must_use]
    pub fn feeds_idle(&self) -> bool {
        self.feed.is_none() && !matches!(self.pending, Some(AccJob::Feed(_)))
    }

    /// Queues a feed job; returns `false` if the shadow slot is full
    /// (the core retries the launch write).
    pub fn launch_feed(&mut self, spec: AccFeedSpec) -> bool {
        self.launch(AccJob::Feed(spec))
    }

    /// Queues a drain job; returns `false` if the shadow slot is full.
    pub fn launch_drain(&mut self, spec: AccDrainSpec) -> bool {
        self.launch(AccJob::Drain(spec))
    }

    /// Discards the accumulated row (the `ACC_CLEAR` write — symbolic
    /// rows are counted, not drained). Returns `false` while the unit is
    /// busy or frozen (the core retries).
    pub fn clear(&mut self) -> bool {
        if self.busy() || self.frozen {
            return false;
        }
        self.row.clear();
        true
    }

    fn launch(&mut self, job: AccJob) -> bool {
        if self.pending.is_some() || self.frozen {
            return false;
        }
        self.pending = Some(job);
        self.promote();
        true
    }

    /// Starts the queued job once its buffer slot frees. Jobs consume
    /// the row buffer at promotion time, so a drain queued behind feeds
    /// sees the fully merged row — and, double-buffered, a feed queued
    /// behind a drain starts on the fresh buffer while the drain's
    /// snapshot is still being written.
    fn promote(&mut self) {
        match self.pending {
            Some(AccJob::Feed(spec)) => {
                if self.feed.is_some() || (!self.double_buffered && self.drain.is_some()) {
                    return;
                }
                self.pending = None;
                self.progress = true;
                if spec.count == 0 {
                    // Zero-length feeds retire instantly (nothing to merge).
                    self.stats.feeds += 1;
                    if spec.count_only {
                        self.stats.count_feeds += 1;
                    }
                    return;
                }
                let old = std::mem::take(&mut self.row);
                self.feed = Some(Box::new(FeedRun::new(&spec, old)));
            }
            Some(AccJob::Drain(spec)) => {
                if self.drain.is_some() || self.feed.is_some() {
                    return;
                }
                self.pending = None;
                self.progress = true;
                self.drain = Some(DrainRun::new(&spec, &self.row));
                self.row.clear();
            }
            None => {}
        }
    }

    /// Whether the unit is frozen (sinking traffic after a fault).
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Whether frozen traffic is still in flight (the streamer keeps
    /// routing the lane port here until the sink drains).
    #[must_use]
    pub fn sink_pending(&self) -> bool {
        self.frozen && self.sink_rsps > 0
    }

    /// A frozen cycle: discard in-flight index responses and stray
    /// write-stream values so the port and the FPU can drain.
    fn tick_frozen(&mut self, now: u64, port: &mut MemPort, lane: &mut Lane) {
        while port.take_rsp(now).is_some() {
            self.sink_rsps = self.sink_rsps.saturating_sub(1);
        }
        if !lane.is_streaming() {
            while lane.take_write().is_some() {}
        }
    }

    /// Advances one cycle against the borrowed lane: `port` carries the
    /// index fetches and drain writes (round-robin when both jobs are in
    /// flight), `lane`'s write FIFO supplies the feed values.
    pub fn tick(&mut self, now: u64, port: &mut MemPort, lane: &mut Lane) {
        if self.frozen {
            self.advanced = false;
            self.tick_frozen(now, port, lane);
            return;
        }
        self.promote();
        if self.feed.is_some() && self.drain.is_some() {
            self.stats.overlap_cycles += 1;
        }
        // Feed datapath: responses, stream heads, one merge step.
        let feed_step = match &mut self.feed {
            Some(run) => Self::tick_feed(
                run,
                now,
                port,
                lane,
                &mut self.stats,
                &mut self.row,
                &mut self.progress,
            ),
            None => FeedStep::Busy,
        };
        if let FeedStep::Fault(kind) = feed_step {
            self.advanced = false;
            self.latch_fault(kind);
            return;
        }
        // One request on the shared port: drain write vs. feed index
        // fetch, arbitrated round-robin like the lane's fetchers.
        if port.can_send() {
            let feed_wants = self.feed.as_ref().is_some_and(|run| run.idx_wants());
            let drain_wants = self.drain.as_ref().is_some_and(|run| !run.reqs.is_empty());
            let grant_drain = match (drain_wants, feed_wants) {
                (true, false) => true,
                (true, true) => {
                    self.stats.port_shared += 1;
                    !self.drain_won_last
                }
                (false, _) => false,
            };
            if grant_drain {
                let run = self.drain.as_mut().expect("drain_wants checked");
                let req = run.reqs.pop_front().expect("drain_wants checked");
                port.send(req);
                self.stats.out_words += 1;
                self.drain_won_last = true;
                self.progress = true;
            } else if feed_wants {
                let run = self.feed.as_mut().expect("feed_wants checked");
                let addr = run.word_it.next_addr().expect("idx_wants checked");
                port.send(MemReq::read(addr));
                run.outstanding_idx += 1;
                self.stats.idx_words += 1;
                self.drain_won_last = false;
                self.progress = true;
            }
        }
        if matches!(feed_step, FeedStep::Done) {
            self.feed = None;
            self.progress = true;
        }
        if self.drain.as_ref().is_some_and(|run| run.reqs.is_empty()) {
            self.drain = None;
            self.stats.drains += 1;
            self.progress = true;
        }
        self.promote();
        // Progress watchdog: a busy unit that makes zero progress for
        // `watchdog` cycles is deadlocked (values that never arrive, a
        // port that never grants) — latch a stall fault instead of
        // hanging the simulation.
        if self.busy() && !self.progress {
            self.stall += 1;
            if self.stall >= self.watchdog {
                self.latch_fault(StreamFaultKind::Stall { cycles: self.stall });
            }
        } else {
            self.stall = 0;
        }
        self.advanced = self.progress;
        self.progress = false;
    }

    /// Classifies what the unit spent the cycle that just ticked on:
    /// parked when frozen, active when any datapath advanced, queued
    /// work blocked behind a drain, a drain write that lost the shared
    /// port, or a feed starved for indices/values.
    #[must_use]
    pub fn attr_cause(&self) -> issr_trace::StallCause {
        use issr_trace::StallCause;
        if self.frozen {
            StallCause::Parked
        } else if !self.busy() {
            StallCause::Idle
        } else if self.advanced {
            StallCause::Active
        } else if self.feed.is_none() && self.pending.is_some() && self.drain.is_some() {
            StallCause::DrainBusy
        } else if self.feed.is_none() && self.drain.is_some() {
            StallCause::PortConflict
        } else {
            StallCause::FifoEmpty
        }
    }

    /// One feed cycle: drain index-word responses, pull the stream
    /// heads, perform one merge step (the index fetch issues from
    /// [`Self::tick`]'s shared-port arbiter). Overflow and order
    /// violations surface as [`FeedStep::Fault`] the cycle the merged
    /// row first exceeds the capacity (or the bad index arrives) — the
    /// pre-feed checkpoint in `run.old` is still intact at that point.
    #[allow(clippy::too_many_arguments)]
    fn tick_feed(
        run: &mut FeedRun,
        now: u64,
        port: &mut MemPort,
        lane: &mut Lane,
        stats: &mut SpAccStats,
        row: &mut Vec<(u32, f64)>,
        progress: &mut bool,
    ) -> FeedStep {
        while let Some(rsp) = port.take_rsp(now) {
            run.outstanding_idx -= 1;
            run.idx_fifo.push(rsp.data);
            *progress = true;
        }
        if run.head.is_none() && run.taken < run.count {
            if run.serializer.wants_word() {
                if let Some(word) = run.idx_fifo.pop() {
                    run.serializer.load_word(word);
                }
            }
            if let Some(idx) = run.serializer.next_index() {
                run.head = Some(idx);
                run.taken += 1;
                *progress = true;
            }
        }
        // Pull a value only while pairs remain — values beyond `count`
        // belong to the next queued feed job. Count-only feeds never
        // touch the write stream.
        if !run.count_only && run.val_head.is_none() && run.consumed < run.count {
            if let Some(bits) = lane.take_write() {
                run.val_head = Some(f64::from_bits(bits));
                *progress = true;
            }
        }
        let cap = run.cap as usize;
        // One comparator step per cycle (the joiner-Union datapath).
        if run.consumed == run.count {
            if run.pos < run.old.len() {
                run.new.push(run.old[run.pos]);
                run.pos += 1;
                stats.steps += 1;
                *progress = true;
                if run.new.len() > cap {
                    return FeedStep::Fault(StreamFaultKind::Overflow { cap: run.cap });
                }
            } else if run.outstanding_idx == 0 {
                *row = std::mem::take(&mut run.new);
                stats.feeds += 1;
                if run.count_only {
                    stats.count_feeds += 1;
                }
                stats.peak_nnz = stats.peak_nnz.max(row.len() as u64);
                return FeedStep::Done;
            }
        } else if let (Some(idx), true) = (run.head, run.count_only || run.val_head.is_some()) {
            let val = run.val_head.unwrap_or(0.0);
            stats.steps += 1;
            *progress = true;
            if run.pos < run.old.len() && run.old[run.pos].0 < idx {
                run.new.push(run.old[run.pos]);
                run.pos += 1;
            } else {
                if run.pos < run.old.len() && run.old[run.pos].0 == idx {
                    run.new.push((idx, run.old[run.pos].1 + val));
                    run.pos += 1;
                    stats.merges += 1;
                } else {
                    match run.new.last_mut() {
                        Some(last) if last.0 == idx => {
                            last.1 += val;
                            stats.merges += 1;
                        }
                        Some(&mut (last, _)) if last > idx => {
                            return FeedStep::Fault(StreamFaultKind::Unsorted {
                                prev: last,
                                next: idx,
                            });
                        }
                        _ => run.new.push((idx, val)),
                    }
                }
                run.head = None;
                run.val_head = None;
                run.consumed += 1;
                stats.pairs_in += 1;
            }
            if run.new.len() > cap {
                return FeedStep::Fault(StreamFaultKind::Overflow { cap: run.cap });
            }
        }
        FeedStep::Busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_mem::tcdm::Tcdm;

    const BASE: u32 = 0x0010_0000;
    const IDX_IN: u32 = BASE + 0x1000;
    const IDX_OUT: u32 = BASE + 0x4000;
    const VAL_OUT: u32 = BASE + 0x8000;

    fn feed_spec(idx_base: u32, count: u64) -> AccFeedSpec {
        AccFeedSpec {
            idx_base,
            count,
            idx_size: IndexSize::U16,
            count_only: false,
            cap: crate::cfg::SPACC_ROW_CAP_RESET,
        }
    }

    fn drain_spec(idx_out: u32) -> AccDrainSpec {
        AccDrainSpec { idx_out, val_out: VAL_OUT, idx_size: IndexSize::U16 }
    }

    /// Runs the unit to idle, pushing `vals` into the lane write FIFO as
    /// capacity allows (the FPU's behaviour).
    fn run_to_idle(spacc: &mut SpAcc, tcdm: &mut Tcdm, lane: &mut Lane, vals: &[f64]) -> u64 {
        let mut port = MemPort::new();
        let mut next = 0;
        for now in 0..100_000u64 {
            if next < vals.len() && lane.can_push() {
                lane.push(vals[next].to_bits());
                next += 1;
            }
            spacc.tick(now, &mut port, lane);
            tcdm.tick(now, &mut [&mut port], &[]);
            if spacc.is_idle() && next == vals.len() {
                return now + 1;
            }
        }
        panic!("SpAcc failed to drain");
    }

    /// Feeds one sorted (idcs, vals) stream as a single job.
    fn feed_stream(spacc: &mut SpAcc, tcdm: &mut Tcdm, idcs: &[u16], vals: &[f64]) {
        assert_eq!(idcs.len(), vals.len());
        tcdm.array_mut().store_u16_slice(IDX_IN, idcs);
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        assert!(spacc.launch_feed(feed_spec(IDX_IN, idcs.len() as u64)));
        run_to_idle(spacc, tcdm, &mut lane, vals);
    }

    #[test]
    fn feed_merges_duplicates_on_the_fly() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let mut spacc = SpAcc::new();
        // Duplicates both within the stream (4, 4) and across entries.
        feed_stream(&mut spacc, &mut tcdm, &[1, 4, 4, 9], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(spacc.nnz(), 3);
        assert_eq!(spacc.row, [(1, 1.0), (4, 5.0), (9, 4.0)]);
        let stats = spacc.stats();
        assert_eq!(stats.feeds, 1);
        assert_eq!(stats.pairs_in, 4);
        assert_eq!(stats.merges, 1);
    }

    #[test]
    fn feeds_accumulate_across_jobs_union_style() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let mut spacc = SpAcc::new();
        feed_stream(&mut spacc, &mut tcdm, &[2, 5, 8], &[1.0, 2.0, 3.0]);
        feed_stream(&mut spacc, &mut tcdm, &[0, 5, 9], &[10.0, 20.0, 30.0]);
        feed_stream(&mut spacc, &mut tcdm, &[8], &[100.0]);
        assert_eq!(spacc.row, [(0, 10.0), (2, 1.0), (5, 22.0), (8, 103.0), (9, 30.0)]);
        assert_eq!(spacc.stats().merges, 2);
        assert_eq!(spacc.stats().peak_nnz, 5);
    }

    #[test]
    fn drain_packs_row_and_clears_buffer() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let mut spacc = SpAcc::new();
        feed_stream(&mut spacc, &mut tcdm, &[3, 7, 12, 40], &[0.5, 1.5, 2.5, 3.5]);
        // Unaligned output base: the row starts mid-word.
        let out = IDX_OUT + 6;
        tcdm.array_mut().store_u16(IDX_OUT + 4, 0xAAAA); // must survive
        assert!(spacc.launch_drain(drain_spec(out)));
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &[]);
        assert_eq!(spacc.nnz(), 0, "flush on row end clears the buffer");
        for (j, &idx) in [3u16, 7, 12, 40].iter().enumerate() {
            assert_eq!(tcdm.array().load_u16(out + 2 * j as u32), idx);
        }
        for (j, &v) in [0.5, 1.5, 2.5, 3.5].iter().enumerate() {
            assert_eq!(tcdm.array().load_f64(VAL_OUT + 8 * j as u32), v);
        }
        // Strobed partial-word writes must not clobber neighbours.
        assert_eq!(tcdm.array().load_u16(IDX_OUT + 4), 0xAAAA);
        assert_eq!(spacc.stats().drains, 1);
        // 4 u16 indices from +6 span 2 words; 4 value words.
        assert_eq!(spacc.stats().out_words, 6);
    }

    #[test]
    fn drain_of_empty_row_is_a_cheap_no_op() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let mut spacc = SpAcc::new();
        assert!(spacc.launch_drain(drain_spec(IDX_OUT)));
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &[]);
        assert_eq!(spacc.stats().out_words, 0);
        assert_eq!(spacc.stats().drains, 1);
    }

    /// A feed stalled on values must backpressure: the merge stops, the
    /// lane FIFO fills, and everything resumes when values arrive late.
    #[test]
    fn feed_backpressures_on_slow_values() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let n = 40u64;
        let idcs: Vec<u16> = (0..n as u16).map(|i| i * 2).collect();
        tcdm.array_mut().store_u16_slice(IDX_IN, &idcs);
        let mut spacc = SpAcc::new();
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        assert!(spacc.launch_feed(feed_spec(IDX_IN, n)));
        let mut port = MemPort::new();
        let mut pushed = 0u64;
        let mut cycles = 0;
        for now in 0..100_000u64 {
            // One value every 7 cycles: far slower than the merge.
            if now % 7 == 0 && pushed < n && lane.can_push() {
                lane.push((pushed as f64).to_bits());
                pushed += 1;
            }
            spacc.tick(now, &mut port, &mut lane);
            tcdm.tick(now, &mut [&mut port], &[]);
            cycles = now + 1;
            if spacc.is_idle() && pushed == n {
                break;
            }
        }
        assert!(spacc.is_idle(), "feed must complete once values arrive");
        assert_eq!(spacc.nnz(), n);
        assert_eq!(spacc.row.iter().map(|&(_, v)| v).sum::<f64>(), (0..n).sum::<u64>() as f64);
        assert!(cycles >= 7 * (n - 1), "consumption cannot outrun the value stream");
    }

    /// Back-to-back jobs queue one deep; a third launch is refused until
    /// the slot frees, and a drain queued behind a feed sees its result.
    #[test]
    fn job_queue_is_one_deep_and_ordered() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        tcdm.array_mut().store_u16_slice(IDX_IN, &[1, 2, 3]);
        let mut spacc = SpAcc::new();
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        assert!(spacc.launch_feed(feed_spec(IDX_IN, 3)));
        assert!(spacc.launch_drain(drain_spec(IDX_OUT)));
        assert!(!spacc.launch_feed(feed_spec(IDX_IN, 3)), "queue is one deep");
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &[5.0, 6.0, 7.0]);
        assert_eq!(tcdm.array().load_u16(IDX_OUT + 2), 2);
        assert_eq!(tcdm.array().load_f64(VAL_OUT + 16), 7.0);
        assert_eq!(spacc.nnz(), 0);
    }

    #[test]
    fn zero_count_feed_retires_without_traffic() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let mut spacc = SpAcc::new();
        feed_stream(&mut spacc, &mut tcdm, &[5], &[1.0]);
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        assert!(spacc.launch_feed(feed_spec(IDX_IN, 0)));
        assert!(spacc.is_idle(), "zero-length feeds retire at launch");
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &[]);
        assert_eq!(spacc.row, [(5, 1.0)]);
        assert_eq!(spacc.stats().feeds, 2);
    }

    /// A decreasing index within one job latches `Unsorted` instead of
    /// panicking; the row buffer is restored to the pre-feed checkpoint.
    #[test]
    fn unsorted_feed_latches_fault_and_restores_checkpoint() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let mut spacc = SpAcc::new();
        feed_stream(&mut spacc, &mut tcdm, &[2, 8], &[5.0, 6.0]); // checkpoint row
        tcdm.array_mut().store_u16_slice(IDX_IN + 0x100, &[9, 3]);
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        assert!(spacc.launch_feed(feed_spec(IDX_IN + 0x100, 2)));
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &[1.0, 2.0]);
        assert_eq!(spacc.fault(), Some(StreamFaultKind::Unsorted { prev: 9, next: 3 }));
        assert!(spacc.is_idle(), "the faulted unit aborts its jobs");
        assert_eq!(spacc.row, [(2, 5.0), (8, 6.0)], "checkpoint restored");
        assert!(!spacc.launch_feed(feed_spec(IDX_IN, 1)), "frozen unit refuses launches");
    }

    fn feed_spec_cap(idx_base: u32, count: u64, cap: u32) -> AccFeedSpec {
        AccFeedSpec { cap, ..feed_spec(idx_base, count) }
    }

    /// Duplicate-index add chains right at the buffer capacity: a
    /// stream of 2x duplicates over `cap` distinct indices merges to
    /// exactly `cap` entries — full, but legal.
    #[test]
    fn duplicate_chains_at_buffer_capacity() {
        let cap = 8u32;
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let idcs: Vec<u16> = (0..cap as u16).flat_map(|i| [i, i]).collect();
        let vals: Vec<f64> = (0..2 * cap).map(|i| f64::from(i) + 1.0).collect();
        tcdm.array_mut().store_u16_slice(IDX_IN, &idcs);
        let mut spacc = SpAcc::new();
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        assert!(spacc.launch_feed(feed_spec_cap(IDX_IN, idcs.len() as u64, cap)));
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &vals);
        assert_eq!(spacc.nnz(), u64::from(cap));
        assert_eq!(spacc.stats().merges, u64::from(cap), "every second pair merges");
        // Each entry is the sum of its duplicate chain.
        for (j, &(idx, v)) in spacc.row.iter().enumerate() {
            assert_eq!(idx, j as u32);
            assert_eq!(v, vals[2 * j] + vals[2 * j + 1]);
        }
        assert_eq!(spacc.stats().peak_nnz, u64::from(cap));
    }

    /// One distinct index past the capacity latches `Overflow` with the
    /// row buffer restored to the pre-feed checkpoint — and replaying
    /// the *same* feed after growing the capacity completes the merge
    /// correctly: the unit-level grow-and-retry protocol.
    #[test]
    fn over_capacity_feed_faults_then_replays_after_growth() {
        let cap = 8u32;
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let mut spacc = SpAcc::new();
        // Seed the checkpoint row with two entries.
        feed_stream(&mut spacc, &mut tcdm, &[1, 3], &[0.5, 0.25]);
        // cap + 1 distinct indices: overflows an 8-entry buffer.
        let idcs: Vec<u16> = (0..=cap as u16).map(|i| i * 2).collect();
        let vals: Vec<f64> = (0..=cap).map(f64::from).collect();
        tcdm.array_mut().store_u16_slice(IDX_IN + 0x200, &idcs);
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        assert!(spacc.launch_feed(feed_spec_cap(IDX_IN + 0x200, idcs.len() as u64, cap)));
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &vals);
        assert_eq!(spacc.fault(), Some(StreamFaultKind::Overflow { cap }));
        assert_eq!(spacc.row, [(1, 0.5), (3, 0.25)], "pre-feed checkpoint restored");
        assert!(!spacc.clear(), "frozen unit refuses ACC_CLEAR");
        // Grow and replay the faulted feed from its checkpointed cursor
        // (fresh lane: the streamer's freeze clears the write FIFO).
        spacc.clear_fault();
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        assert!(spacc.launch_feed(feed_spec_cap(IDX_IN + 0x200, idcs.len() as u64, 2 * cap)));
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &vals);
        assert_eq!(spacc.fault(), None);
        // The merged row: checkpoint {1, 3} unioned with {0, 2, .., 16}.
        assert_eq!(spacc.nnz(), u64::from(cap) + 3);
        assert_eq!(spacc.row[0], (0, 0.0));
        assert_eq!(spacc.row[1], (1, 0.5));
        assert_eq!(spacc.row[2], (2, 1.0));
        assert_eq!(spacc.row[3], (3, 0.25));
        assert_eq!(spacc.row.last().copied(), Some((16, 8.0)));
    }

    /// A value feed whose write stream never delivers trips the progress
    /// watchdog: the deadlock latches a `Stall` fault and the unit
    /// aborts instead of hanging its simulation.
    #[test]
    fn starved_feed_latches_stall_fault() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        tcdm.array_mut().store_u16_slice(IDX_IN, &[4, 7]);
        let mut spacc = SpAcc::new();
        spacc.set_watchdog(200);
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        assert!(spacc.launch_feed(feed_spec(IDX_IN, 2)));
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &[]); // no values, ever
        match spacc.fault() {
            Some(StreamFaultKind::Stall { cycles }) => assert!(cycles >= 200),
            other => panic!("expected a stall fault, got {other:?}"),
        }
        assert!(spacc.is_idle());
    }

    /// Two drains packing adjacent rows that share a 64-bit index word
    /// at their boundary (the cluster's worker-boundary case): the
    /// strobed partial-word writes must compose without clobbering.
    #[test]
    fn strobed_drains_compose_at_boundary_words() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let mut spacc = SpAcc::new();
        // Row 1: three u16 indices at the word base; row 2: two more
        // continuing mid-word — indices 3..5 of the same packed array.
        feed_stream(&mut spacc, &mut tcdm, &[10, 11, 12], &[1.0, 2.0, 3.0]);
        assert!(spacc.launch_drain(AccDrainSpec {
            idx_out: IDX_OUT,
            val_out: VAL_OUT,
            idx_size: IndexSize::U16,
        }));
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &[]);
        feed_stream(&mut spacc, &mut tcdm, &[20, 21], &[4.0, 5.0]);
        assert!(spacc.launch_drain(AccDrainSpec {
            idx_out: IDX_OUT + 6, // continues inside row 1's last word
            val_out: VAL_OUT + 24,
            idx_size: IndexSize::U16,
        }));
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &[]);
        for (j, want) in [10u16, 11, 12, 20, 21].iter().enumerate() {
            assert_eq!(tcdm.array().load_u16(IDX_OUT + 2 * j as u32), *want, "index {j}");
        }
        for (j, want) in [1.0f64, 2.0, 3.0, 4.0, 5.0].iter().enumerate() {
            assert_eq!(tcdm.array().load_f64(VAL_OUT + 8 * j as u32), *want, "value {j}");
        }
    }

    /// The double-buffer swap with an in-flight drain: a feed queued
    /// behind a drain starts merging into the fresh buffer while the
    /// drain is still writing its snapshot — overlap cycles accrue and
    /// neither row corrupts the other.
    #[test]
    fn double_buffer_swap_with_inflight_drain() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let mut spacc = SpAcc::new();
        // Row 1 (large enough that its drain is still writing when the
        // next feed starts).
        let idcs1: Vec<u16> = (0..24u16).map(|i| i * 3).collect();
        let vals1: Vec<f64> = (0..24).map(|i| f64::from(i) + 0.5).collect();
        feed_stream(&mut spacc, &mut tcdm, &idcs1, &vals1);
        // Row 2's indices, placed elsewhere.
        let idcs2: Vec<u16> = (0..16u16).map(|i| i * 2 + 1).collect();
        let vals2: Vec<f64> = (0..16).map(|i| -f64::from(i)).collect();
        tcdm.array_mut().store_u16_slice(IDX_IN + 0x200, &idcs2);
        // Queue drain(row 1) then feed(row 2) back to back.
        assert!(spacc.launch_drain(drain_spec(IDX_OUT)));
        assert!(spacc.launch_feed(feed_spec(IDX_IN + 0x200, idcs2.len() as u64)));
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &vals2);
        // The drain snapshot holds row 1 untouched by the overlapping feed.
        for (j, &idx) in idcs1.iter().enumerate() {
            assert_eq!(tcdm.array().load_u16(IDX_OUT + 2 * j as u32), idx);
            assert_eq!(tcdm.array().load_f64(VAL_OUT + 8 * j as u32), vals1[j]);
        }
        // The live buffer holds row 2.
        assert_eq!(spacc.nnz(), idcs2.len() as u64);
        assert_eq!(spacc.row.iter().map(|&(i, _)| i as u16).collect::<Vec<_>>(), idcs2);
        assert!(spacc.stats().overlap_cycles > 0, "feed must overlap the in-flight drain");
    }

    /// Single-buffer mode (the benchmark's baseline knob) serializes the
    /// same sequence: zero overlap cycles, identical results.
    #[test]
    fn single_buffer_mode_serializes_drain_and_feed() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let mut spacc = SpAcc::new();
        spacc.set_double_buffered(false);
        feed_stream(&mut spacc, &mut tcdm, &[1, 5, 7], &[1.0, 2.0, 3.0]);
        tcdm.array_mut().store_u16_slice(IDX_IN + 0x200, &[2, 4]);
        assert!(spacc.launch_drain(drain_spec(IDX_OUT)));
        assert!(spacc.launch_feed(feed_spec(IDX_IN + 0x200, 2)));
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        run_to_idle(&mut spacc, &mut tcdm, &mut lane, &[9.0, 8.0]);
        assert_eq!(spacc.stats().overlap_cycles, 0);
        assert_eq!(tcdm.array().load_u16(IDX_OUT + 2), 5);
        assert_eq!(spacc.row, [(2, 9.0), (4, 8.0)]);
    }

    /// The merge sustains one incoming pair per cycle against an empty
    /// buffer (steady state of a first expansion), 16-bit indices.
    #[test]
    fn feed_sustains_near_one_pair_per_cycle() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let n = 256u64;
        let idcs: Vec<u16> = (0..n as u16).collect();
        tcdm.array_mut().store_u16_slice(IDX_IN, &idcs);
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut spacc = SpAcc::new();
        let mut lane = Lane::new(crate::lane::LaneKind::Issr);
        assert!(spacc.launch_feed(feed_spec(IDX_IN, n)));
        let cycles = run_to_idle(&mut spacc, &mut tcdm, &mut lane, &vals);
        let rate = n as f64 / cycles as f64;
        assert!(rate > 0.9, "feed rate {rate:.3} over {cycles} cycles");
    }
}
