//! The index joiner: sparse-sparse stream matching.
//!
//! The ISSR's indirection unit handles one sparse operand against a
//! dense one. Its successor, *Sparse Stream Semantic Registers*
//! (arXiv:2305.05559), shows the same lane machinery generalizes to two
//! **sparse** operands by inserting an index comparator between two
//! index streams. This module models that comparator and its two stream
//! sides cycle by cycle, with the same FIFO/ready-valid discipline as
//! [`crate::lane`]:
//!
//! * each side owns one 64-bit memory port and multiplexes **index-word
//!   fetches** and **value fetches** onto it with the lane's round-robin
//!   arbiter, reusing the word fetcher, decoupling FIFO and 16/32-bit
//!   [`IndexSerializer`];
//! * a comparator inspects the two head indices and performs one merge
//!   step per cycle: on a match both sides fetch the value at their
//!   stream *position*; on a mismatch the smaller head is skipped (or
//!   zero-filled, depending on the [`JoinerMode`]);
//! * matched values retire in order through per-side output queues that
//!   the streamer drains into the mapped register-file lanes, so an
//!   `fmadd` loop consumes matched pairs exactly like a dense stream.
//!
//! Both index streams must be sorted; duplicate-free streams implement
//! set semantics (the oracle the property tests check against).

use crate::affine::AffineIterator;
use crate::cfg::{JoinerMode, JoinerSpec};
use crate::fault::{StreamFaultKind, STREAM_WATCHDOG_RESET};
use crate::fifo::Fifo;
use crate::lane::IDX_FIFO_DEPTH;
use crate::serializer::{IndexSerializer, IndexSize};
use issr_mem::port::{MemPort, MemReq};
use std::collections::VecDeque;

/// Depth of each side's matched-value output queue (mirrors the lane's
/// five-deep data FIFO).
pub const JOIN_OUT_DEPTH: usize = 5;

/// Activity counters of one joiner (one job), for verification and the
/// utilization reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinerStats {
    /// Comparator merge steps (head pops, matching or not).
    pub steps: u64,
    /// Steps where both heads carried the same index.
    pub matches: u64,
    /// Value pairs emitted toward the register file.
    pub emissions: u64,
    /// Index words fetched (both sides).
    pub idx_words: u64,
    /// Values fetched from memory (both sides).
    pub val_reads: u64,
    /// Zero-filled outputs (union / gather modes).
    pub zero_fills: u64,
    /// Jobs completed.
    pub jobs: u64,
}

impl JoinerStats {
    /// Accumulates another job's counters into this one.
    pub fn merge(&mut self, other: &JoinerStats) {
        issr_trace::StatMerge::merge_from(self, other);
    }
}

impl issr_trace::StatMerge for JoinerStats {
    fn merge_from(&mut self, other: &Self) {
        self.steps += other.steps;
        self.matches += other.matches;
        self.emissions += other.emissions;
        self.idx_words += other.idx_words;
        self.val_reads += other.val_reads;
        self.zero_fills += other.zero_fills;
        self.jobs += other.jobs;
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SideTag {
    IdxWord,
    Value,
}

/// A matched value on its way out: `None` while its fetch is in flight.
type OutSlot = Option<u64>;

/// One operand stream of the joiner: index fetch/serialize plus value
/// fetch at matched positions, sharing one memory port.
#[derive(Debug)]
struct Side {
    word_it: AffineIterator,
    idx_fifo: Fifo<u64>,
    serializer: IndexSerializer,
    outstanding_idx: usize,
    idx_size: IndexSize,
    /// Current head of the index stream, if peeked.
    head: Option<u32>,
    /// Indices taken from the serializer so far (the head, when present,
    /// is element `taken - 1` of the stream).
    taken: u64,
    count: u64,
    vals_base: u32,
    /// Matched values awaiting delivery, oldest first.
    out: VecDeque<OutSlot>,
    /// Value fetches granted a slot but not yet on the port.
    val_reqs: VecDeque<u32>,
    /// Per-port response tags, in request order.
    rsp_tags: VecDeque<SideTag>,
    /// Round-robin marker: `true` if the index fetcher won the last
    /// contended cycle.
    idx_won_last: bool,
}

impl Side {
    fn new(idx_base: u32, vals_base: u32, count: u64, idx_size: IndexSize) -> Self {
        let words = IndexSerializer::words_needed(idx_size, idx_base, count);
        let mut word_it = AffineIterator::linear(idx_base & !7, words.max(1) as u32, 8);
        if words == 0 {
            while word_it.next_addr().is_some() {}
        }
        Self {
            word_it,
            idx_fifo: Fifo::new(IDX_FIFO_DEPTH),
            serializer: IndexSerializer::new(idx_size, idx_base, count),
            outstanding_idx: 0,
            idx_size,
            head: None,
            taken: 0,
            count,
            vals_base,
            out: VecDeque::new(),
            val_reqs: VecDeque::new(),
            rsp_tags: VecDeque::new(),
            idx_won_last: false,
        }
    }

    /// Indices available now or already paid for, in elements (the head
    /// counts as one).
    fn index_headroom(&self) -> u64 {
        let per_word = u64::from(self.idx_size.per_word());
        u64::from(self.head.is_some())
            + self.serializer.buffered()
            + (self.idx_fifo.len() as u64 + self.outstanding_idx as u64) * per_word
    }

    /// The lane's just-in-time index fetch policy.
    fn idx_wants(&self) -> bool {
        !self.word_it.is_done()
            && self.idx_fifo.free() > self.outstanding_idx
            && self.index_headroom() <= u64::from(self.idx_size.per_word())
    }

    /// Pulls the next index into `head` if none is held and one is
    /// available.
    fn refill_head(&mut self) {
        if self.head.is_some() || self.taken == self.count {
            return;
        }
        if self.serializer.wants_word() {
            let Some(word) = self.idx_fifo.pop() else {
                return;
            };
            self.serializer.load_word(word);
        }
        if let Some(idx) = self.serializer.next_index() {
            self.head = Some(idx);
            self.taken += 1;
        }
    }

    /// Whether the stream is fully consumed (no head, nothing left).
    fn exhausted(&self) -> bool {
        self.head.is_none() && self.taken == self.count
    }

    /// Stream position of the current head.
    fn head_pos(&self) -> u64 {
        debug_assert!(self.head.is_some(), "no head to locate");
        self.taken - 1
    }

    /// Whether an output slot is free for one more emission.
    fn can_emit(&self) -> bool {
        self.out.len() < JOIN_OUT_DEPTH
    }

    /// Reserves a slot and queues the value fetch for stream position
    /// `pos`.
    fn emit_fetch(&mut self, pos: u64) {
        debug_assert!(self.can_emit(), "emission without a free slot");
        self.out.push_back(None);
        self.val_reqs.push_back(self.vals_base.wrapping_add((pos as u32) << 3));
    }

    /// Reserves a slot carrying a zero-fill (no memory traffic).
    fn emit_zero(&mut self) {
        debug_assert!(self.can_emit(), "emission without a free slot");
        self.out.push_back(Some(0));
    }

    /// Drains ready responses: index words into the decoupling FIFO,
    /// values into their (oldest pending) output slot.
    fn drain_responses(&mut self, now: u64, port: &mut MemPort) {
        while let Some(rsp) = port.take_rsp(now) {
            match self.rsp_tags.pop_front().expect("response without request") {
                SideTag::IdxWord => {
                    self.outstanding_idx -= 1;
                    self.idx_fifo.push(rsp.data);
                }
                SideTag::Value => {
                    let slot = self
                        .out
                        .iter_mut()
                        .find(|s| s.is_none())
                        .expect("value response without pending slot");
                    *slot = Some(rsp.data);
                }
            }
        }
    }

    /// Frozen-mode drain: takes at most as many responses as this side
    /// has outstanding, discarding the data — on a port-conflict fault
    /// another master's responses may share the port, and those are left
    /// for their owner's sink.
    fn drain_discard_bounded(&mut self, now: u64, port: &mut MemPort) {
        while !self.rsp_tags.is_empty() {
            if port.take_rsp(now).is_none() {
                break;
            }
            if self.rsp_tags.pop_front() == Some(SideTag::IdxWord) {
                self.outstanding_idx -= 1;
            }
        }
    }

    /// Issues at most one request, arbitrating index vs. value fetches
    /// round-robin exactly like the indirection lane. `quiesce` stops new
    /// index-word fetches (job finished early).
    fn issue(&mut self, port: &mut MemPort, quiesce: bool, stats: &mut JoinerStats) {
        if !port.can_send() {
            return;
        }
        let idx_wants = !quiesce && self.idx_wants();
        let val_wants = !self.val_reqs.is_empty();
        let grant_idx = match (idx_wants, val_wants) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => !self.idx_won_last,
            (false, false) => return,
        };
        if grant_idx {
            let addr = self.word_it.next_addr().expect("idx_wants checked");
            port.send(MemReq::read(addr));
            self.rsp_tags.push_back(SideTag::IdxWord);
            self.outstanding_idx += 1;
            self.idx_won_last = true;
            stats.idx_words += 1;
        } else {
            let addr = self.val_reqs.pop_front().expect("val_wants checked");
            port.send(MemReq::read(addr));
            self.rsp_tags.push_back(SideTag::Value);
            self.idx_won_last = false;
            stats.val_reads += 1;
        }
    }

    /// Whether the head output is deliverable.
    fn out_ready(&self) -> bool {
        matches!(self.out.front(), Some(Some(_)))
    }

    /// Delivers the head output.
    fn pop_out(&mut self) -> u64 {
        self.out.pop_front().flatten().expect("out_ready checked")
    }

    /// Whether all memory traffic has drained and outputs are delivered.
    fn drained(&self) -> bool {
        self.out.is_empty()
            && self.val_reqs.is_empty()
            && self.outstanding_idx == 0
            && self.rsp_tags.is_empty()
    }

    /// Whether only the memory traffic has drained (a frozen job's
    /// undelivered outputs are discarded, not waited for).
    fn traffic_drained(&self) -> bool {
        self.outstanding_idx == 0 && self.rsp_tags.is_empty()
    }
}

/// One index-joiner job in flight.
#[derive(Debug)]
pub struct IndexJoiner {
    mode: JoinerMode,
    /// Count-only job: merge without value traffic (length-prefix
    /// handshake — the emission count lands in `JOIN_COUNT`).
    count_only: bool,
    a: Side,
    b: Side,
    /// Set once the merge has reached its terminal condition; remaining
    /// traffic only drains.
    done_stepping: bool,
    /// Frozen by a stream fault: the merge stops, queued value fetches
    /// are cancelled, in-flight responses drain, undelivered outputs
    /// are discarded.
    frozen: bool,
    /// The latched mid-stream fault, if any ([`Self::fault`]).
    fault: Option<StreamFaultKind>,
    /// Progress-watchdog threshold in cycles ([`Self::set_watchdog`]).
    watchdog: u64,
    /// Consecutive cycles without progress while the job was live.
    stall: u64,
    /// Progress happened since the last watchdog check (merge step,
    /// memory traffic, or a consumer pop).
    progress: bool,
    /// Whether the last [`Self::tick`] observably advanced the job —
    /// the attribution probe's activity signal.
    advanced: bool,
    stats: JoinerStats,
}

impl IndexJoiner {
    /// Starts the job described by `spec`.
    #[must_use]
    pub fn new(spec: &JoinerSpec) -> Self {
        Self {
            mode: spec.mode,
            count_only: spec.count_only,
            a: Side::new(spec.idx_a, spec.vals_a, spec.count_a, spec.idx_size),
            b: Side::new(spec.idx_b, spec.vals_b, spec.count_b, spec.idx_size),
            done_stepping: false,
            frozen: false,
            fault: None,
            watchdog: STREAM_WATCHDOG_RESET,
            stall: 0,
            progress: false,
            advanced: false,
            stats: JoinerStats::default(),
        }
    }

    /// The latched mid-stream fault, if the watchdog fired.
    #[must_use]
    pub fn fault(&self) -> Option<StreamFaultKind> {
        self.fault
    }

    /// Sets the progress-watchdog threshold (cycles without progress
    /// before a [`StreamFaultKind::Stall`] latches).
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.watchdog = cycles.max(1);
    }

    /// Freezes the job after a stream fault: the merge stops, queued
    /// value fetches are cancelled, and once the in-flight responses
    /// drain the job reads done with its undelivered outputs discarded.
    pub fn freeze(&mut self) {
        self.frozen = true;
        self.done_stepping = true;
        self.a.val_reqs.clear();
        self.b.val_reqs.clear();
    }

    /// This job's matching mode.
    #[must_use]
    pub fn mode(&self) -> JoinerMode {
        self.mode
    }

    /// Activity counters so far.
    #[must_use]
    pub fn stats(&self) -> JoinerStats {
        self.stats
    }

    /// Whether an A-side output is deliverable.
    #[must_use]
    pub fn a_ready(&self) -> bool {
        self.a.out_ready()
    }

    /// Whether a B-side output is deliverable.
    #[must_use]
    pub fn b_ready(&self) -> bool {
        self.b.out_ready()
    }

    /// Delivers the next A-side value.
    ///
    /// # Panics
    /// Panics if no output is ready (check [`Self::a_ready`]).
    pub fn pop_a(&mut self) -> u64 {
        self.progress = true;
        self.a.pop_out()
    }

    /// Delivers the next B-side value.
    ///
    /// # Panics
    /// Panics if no output is ready (check [`Self::b_ready`]).
    pub fn pop_b(&mut self) -> u64 {
        self.progress = true;
        self.b.pop_out()
    }

    /// Whether the job has fully completed: merge finished, memory
    /// drained, and every matched value delivered. A frozen job is done
    /// once its memory traffic settles — undelivered outputs are
    /// discarded with it.
    #[must_use]
    pub fn is_done(&self) -> bool {
        if self.frozen {
            return self.a.traffic_drained() && self.b.traffic_drained();
        }
        self.done_stepping && self.a.drained() && self.b.drained()
    }

    /// Whether a stream fault froze this job.
    #[must_use]
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Whether both output queues have a free slot (the comparator can
    /// emit a matched pair this cycle).
    #[must_use]
    pub fn outputs_free(&self) -> bool {
        self.count_only || (self.a.can_emit() && self.b.can_emit())
    }

    /// Classifies what the joiner spent the cycle that just ticked on:
    /// parked when frozen, active when it observably advanced, output
    /// back-pressure when the comparator has matches but no free slot,
    /// starved otherwise (index/value words still in flight).
    #[must_use]
    pub fn attr_cause(&self) -> issr_trace::StallCause {
        use issr_trace::StallCause;
        if self.frozen {
            StallCause::Parked
        } else if self.is_done() {
            StallCause::Idle
        } else if self.advanced {
            StallCause::Active
        } else if !self.outputs_free() {
            StallCause::FifoFull
        } else {
            StallCause::FifoEmpty
        }
    }

    /// A cheap fingerprint of every observable advance: any change means
    /// the job made progress this cycle.
    #[allow(clippy::type_complexity)]
    fn signature(&self) -> (u64, u64, u64, u64, u64, u64, usize, usize, usize, usize, bool) {
        (
            self.stats.steps,
            self.stats.emissions,
            self.stats.idx_words,
            self.stats.val_reads,
            self.a.taken,
            self.b.taken,
            self.a.rsp_tags.len(),
            self.b.rsp_tags.len(),
            self.a.out.len(),
            self.b.out.len(),
            self.done_stepping,
        )
    }

    /// Advances one cycle against the two lane ports.
    pub fn tick(&mut self, now: u64, port_a: &mut MemPort, port_b: &mut MemPort) {
        if self.frozen {
            self.advanced = false;
            self.a.drain_discard_bounded(now, port_a);
            self.b.drain_discard_bounded(now, port_b);
            return;
        }
        let before = self.signature();
        self.a.drain_responses(now, port_a);
        self.b.drain_responses(now, port_b);
        self.a.refill_head();
        self.b.refill_head();
        self.step();
        self.a.issue(port_a, self.done_stepping, &mut self.stats);
        self.b.issue(port_b, self.done_stepping, &mut self.stats);
        // Progress watchdog: a live job that neither steps, moves
        // memory, nor gets consumed for `watchdog` cycles is deadlocked
        // (a consumer that never reads its outputs) — latch a stall
        // fault and freeze instead of hanging the simulation.
        self.advanced = self.signature() != before || self.progress;
        if self.advanced {
            self.stall = 0;
        } else if !self.is_done() {
            self.stall += 1;
            if self.stall >= self.watchdog {
                self.fault = Some(StreamFaultKind::Stall { cycles: self.stall });
                self.freeze();
            }
        }
        self.progress = false;
    }

    /// One comparator merge step, if inputs and output slots allow.
    fn step(&mut self) {
        if self.done_stepping {
            return;
        }
        let (a_head, b_head) = (self.a.head, self.b.head);
        // Count-only jobs emit nothing, so slots are never the limit.
        let pair_slots = self.count_only || (self.a.can_emit() && self.b.can_emit());
        match self.mode {
            JoinerMode::Intersect => match (a_head, b_head) {
                _ if self.a.exhausted() || self.b.exhausted() => {
                    self.done_stepping = true;
                }
                (Some(ia), Some(ib)) => {
                    if ia == ib {
                        if pair_slots {
                            self.emit_pair(true, true);
                            self.a.head = None;
                            self.b.head = None;
                            self.stats.matches += 1;
                            self.stats.steps += 1;
                        }
                    } else if ia < ib {
                        self.a.head = None;
                        self.stats.steps += 1;
                    } else {
                        self.b.head = None;
                        self.stats.steps += 1;
                    }
                }
                _ => {}
            },
            JoinerMode::GatherA => match (a_head, b_head) {
                _ if self.a.exhausted() => {
                    self.done_stepping = true;
                }
                (Some(ia), Some(ib)) => {
                    if ib < ia {
                        self.b.head = None;
                        self.stats.steps += 1;
                    } else if pair_slots {
                        self.emit_pair(true, ia == ib);
                        self.a.head = None;
                        if ia == ib {
                            self.b.head = None;
                            self.stats.matches += 1;
                        }
                        self.stats.steps += 1;
                    }
                }
                (Some(_), None) if self.b.exhausted() && pair_slots => {
                    self.emit_pair(true, false);
                    self.a.head = None;
                    self.stats.steps += 1;
                }
                _ => {}
            },
            JoinerMode::Union => match (a_head, b_head) {
                _ if self.a.exhausted() && self.b.exhausted() => {
                    self.done_stepping = true;
                }
                (Some(ia), Some(ib)) if pair_slots => {
                    self.emit_pair(ia <= ib, ib <= ia);
                    if ia <= ib {
                        self.a.head = None;
                    }
                    if ib <= ia {
                        self.b.head = None;
                    }
                    if ia == ib {
                        self.stats.matches += 1;
                    }
                    self.stats.steps += 1;
                }
                (Some(_), None) if self.b.exhausted() && pair_slots => {
                    self.emit_pair(true, false);
                    self.a.head = None;
                    self.stats.steps += 1;
                }
                (None, Some(_)) if self.a.exhausted() && pair_slots => {
                    self.emit_pair(false, true);
                    self.b.head = None;
                    self.stats.steps += 1;
                }
                _ => {}
            },
        }
    }

    /// Emits one output pair; a side fetches its value at the current
    /// head position when selected, and zero-fills otherwise. Count-only
    /// jobs only tally the emission.
    fn emit_pair(&mut self, a_selected: bool, b_selected: bool) {
        if self.count_only {
            self.stats.emissions += 1;
            return;
        }
        if a_selected {
            let pos = self.a.head_pos();
            self.a.emit_fetch(pos);
        } else {
            self.a.emit_zero();
            self.stats.zero_fills += 1;
        }
        if b_selected {
            let pos = self.b.head_pos();
            self.b.emit_fetch(pos);
        } else {
            self.b.emit_zero();
            self.stats.zero_fills += 1;
        }
        self.stats.emissions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::JoinerMode;
    use issr_mem::tcdm::Tcdm;

    const BASE: u32 = 0x0010_0000;
    const IDX_A: u32 = BASE + 0x1000;
    const IDX_B: u32 = BASE + 0x2000;
    const VALS_A: u32 = BASE + 0x4000;
    const VALS_B: u32 = BASE + 0x8000;

    /// Places both streams and runs the joiner to completion; A values
    /// are `1000 + pos`, B values `2000 + pos`.
    fn run_joiner(
        mode: JoinerMode,
        idcs_a: &[u32],
        idcs_b: &[u32],
        wide: bool,
    ) -> (Vec<u64>, Vec<u64>, JoinerStats, u64) {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let size = if wide { IndexSize::U32 } else { IndexSize::U16 };
        for (side, idcs) in [(IDX_A, idcs_a), (IDX_B, idcs_b)] {
            for (j, &idx) in idcs.iter().enumerate() {
                let addr = side + j as u32 * size.bytes();
                if wide {
                    tcdm.array_mut().store_u32(addr, idx);
                } else {
                    tcdm.array_mut().store_u16(addr, idx as u16);
                }
            }
        }
        for j in 0..idcs_a.len() as u32 {
            tcdm.array_mut().store_u64(VALS_A + j * 8, 1000 + u64::from(j));
        }
        for j in 0..idcs_b.len() as u32 {
            tcdm.array_mut().store_u64(VALS_B + j * 8, 2000 + u64::from(j));
        }
        let spec = JoinerSpec {
            count_only: false,
            mode,
            idx_size: size,
            idx_a: IDX_A,
            vals_a: VALS_A,
            count_a: idcs_a.len() as u64,
            idx_b: IDX_B,
            vals_b: VALS_B,
            count_b: idcs_b.len() as u64,
        };
        let mut joiner = IndexJoiner::new(&spec);
        let mut pa = MemPort::new();
        let mut pb = MemPort::new();
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        let mut cycles = 0;
        for now in 0..100_000u64 {
            joiner.tick(now, &mut pa, &mut pb);
            tcdm.tick(now, &mut [&mut pa, &mut pb], &[]);
            while joiner.a_ready() {
                out_a.push(joiner.pop_a());
            }
            while joiner.b_ready() {
                out_b.push(joiner.pop_b());
            }
            cycles = now + 1;
            if joiner.is_done() {
                break;
            }
        }
        assert!(joiner.is_done(), "joiner failed to drain");
        (out_a, out_b, joiner.stats(), cycles)
    }

    // Expected outputs below are hand-derived from each fixed input
    // (values tag stream positions); the randomized oracle comparison
    // lives in `tests/joiner_props.rs`.

    #[test]
    fn intersect_emits_only_matches() {
        let a = [1, 4, 7, 9, 12];
        let b = [0, 4, 5, 9, 30];
        for wide in [false, true] {
            let (out_a, out_b, stats, _) = run_joiner(JoinerMode::Intersect, &a, &b, wide);
            // Matches at 4 (A pos 1, B pos 1) and 9 (A pos 3, B pos 3).
            assert_eq!(out_a, [1001, 1003]);
            assert_eq!(out_b, [2001, 2003]);
            assert_eq!(stats.matches, 2);
            assert_eq!(stats.emissions, 2);
            assert_eq!(stats.zero_fills, 0);
        }
    }

    #[test]
    fn union_zero_fills_the_absent_side() {
        let a = [2, 3, 8];
        let b = [3, 5];
        let (out_a, out_b, stats, _) = run_joiner(JoinerMode::Union, &a, &b, false);
        // Union indices [2, 3, 5, 8]: 3 matches, 5 is B-only, rest A-only.
        assert_eq!(out_a, [1000, 1001, 0, 1002]);
        assert_eq!(out_b, [0, 2000, 2001, 0]);
        assert_eq!(stats.emissions, 4);
        assert_eq!(stats.matches, 1);
        assert_eq!(stats.zero_fills, 3);
    }

    #[test]
    fn gather_a_emits_once_per_a_index() {
        let a = [1, 6, 7, 20];
        let b = [0, 6, 19, 20, 25];
        let (out_a, out_b, stats, _) = run_joiner(JoinerMode::GatherA, &a, &b, true);
        // One pair per A element; 6 and 20 match B positions 1 and 3.
        assert_eq!(out_a, [1000, 1001, 1002, 1003]);
        assert_eq!(out_b, [0, 2001, 0, 2003]);
        assert_eq!(stats.emissions, a.len() as u64);
    }

    #[test]
    fn empty_streams_terminate_immediately() {
        let none: (Vec<u64>, Vec<u64>) = (vec![], vec![]);
        for mode in JoinerMode::ALL {
            let (out_a, out_b, _, _) = run_joiner(mode, &[], &[], false);
            assert!(out_a.is_empty() && out_b.is_empty(), "{mode}");
            // A = [3, 4], B empty: intersection is empty; union and
            // gather-A emit both A elements with a zero-filled B side.
            let (out_a, out_b, _, _) = run_joiner(mode, &[3, 4], &[], false);
            let (exp_a, exp_b) = match mode {
                JoinerMode::Intersect => none.clone(),
                JoinerMode::Union | JoinerMode::GatherA => (vec![1000, 1001], vec![0, 0]),
            };
            assert_eq!(out_a, exp_a, "{mode}");
            assert_eq!(out_b, exp_b, "{mode}");
            // A empty, B = [1, 9]: only union emits (B side, A zeroed).
            let (out_a, out_b, _, _) = run_joiner(mode, &[], &[1, 9], false);
            let (exp_a, exp_b) = match mode {
                JoinerMode::Intersect | JoinerMode::GatherA => none.clone(),
                JoinerMode::Union => (vec![0, 0], vec![2000, 2001]),
            };
            assert_eq!(out_a, exp_a, "{mode}");
            assert_eq!(out_b, exp_b, "{mode}");
        }
    }

    #[test]
    fn intersect_stops_early_when_one_stream_ends() {
        // B ends at 5; the joiner must not fetch A's tail index words
        // beyond its lookahead.
        let a: Vec<u32> = (0..200).map(|i| i * 2).collect();
        let b = [1, 5];
        let (out_a, _, stats, cycles) = run_joiner(JoinerMode::Intersect, &a, &b, false);
        assert!(out_a.is_empty());
        // Merge visits at most the A heads below ~5 plus lookahead, far
        // fewer than the 200-element stream.
        assert!(stats.steps < 16, "steps {}", stats.steps);
        assert!(cycles < 64, "cycles {cycles}");
    }

    /// Disjoint streams in gather mode hit the zero-fill fast path: one
    /// emission per A element, throughput at the 16-bit lane limit.
    #[test]
    fn gather_a_sustains_lane_rate_on_disjoint_streams() {
        let n = 400u32;
        let a: Vec<u32> = (0..n).map(|i| i * 2 + 1).collect(); // odd
        let b: Vec<u32> = (0..64).map(|i| i * 2).collect(); // even
        let (out_a, out_b, _, cycles) = run_joiner(JoinerMode::GatherA, &a, &b, false);
        assert_eq!(out_a.len(), n as usize);
        assert!(out_b.iter().all(|&v| v == 0));
        let rate = f64::from(n) / cycles as f64;
        // A-side port: value fetch per emission + 1 index word per 4.
        // B-side skips interleave, costing a bit over the pure 4/5.
        assert!(rate > 0.6, "gather rate {rate:.3} over {cycles} cycles");
    }

    /// Identical streams intersect at full match rate: one emission per
    /// cycle bounded by the 16-bit index/value port sharing.
    #[test]
    fn intersect_identical_streams_beats_software_merge_rate() {
        let n = 300u32;
        let a: Vec<u32> = (0..n).collect();
        let (out_a, _, stats, cycles) = run_joiner(JoinerMode::Intersect, &a, &a, false);
        assert_eq!(out_a.len(), n as usize);
        assert_eq!(stats.matches, u64::from(n));
        let rate = f64::from(n) / cycles as f64;
        // The software two-pointer merge runs ~1/7 matches per cycle;
        // the joiner sustains close to the 4/5 port limit.
        assert!(rate > 0.7, "match rate {rate:.3} over {cycles} cycles");
    }

    #[test]
    fn unaligned_index_bases_join_correctly() {
        // Both index arrays start mid-word.
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let a: [u16; 3] = [2, 5, 9];
        let b: [u16; 4] = [1, 5, 9, 11];
        tcdm.array_mut().store_u16_slice(IDX_A + 6, &a);
        tcdm.array_mut().store_u16_slice(IDX_B + 2, &b);
        for j in 0..4u32 {
            tcdm.array_mut().store_u64(VALS_A + j * 8, 100 + u64::from(j));
            tcdm.array_mut().store_u64(VALS_B + j * 8, 200 + u64::from(j));
        }
        let spec = JoinerSpec {
            count_only: false,
            mode: JoinerMode::Intersect,
            idx_size: IndexSize::U16,
            idx_a: IDX_A + 6,
            vals_a: VALS_A,
            count_a: 3,
            idx_b: IDX_B + 2,
            vals_b: VALS_B,
            count_b: 4,
        };
        let mut joiner = IndexJoiner::new(&spec);
        let mut pa = MemPort::new();
        let mut pb = MemPort::new();
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for now in 0..10_000u64 {
            joiner.tick(now, &mut pa, &mut pb);
            tcdm.tick(now, &mut [&mut pa, &mut pb], &[]);
            while joiner.a_ready() {
                out_a.push(joiner.pop_a());
            }
            while joiner.b_ready() {
                out_b.push(joiner.pop_b());
            }
            if joiner.is_done() {
                break;
            }
        }
        assert_eq!(out_a, [101, 102]); // positions 1, 2 of A
        assert_eq!(out_b, [201, 202]); // positions 1, 2 of B
    }

    /// A consumer that never pops trips the progress watchdog: the
    /// stall fault latches, the frozen job drains its in-flight memory
    /// traffic, and `is_done` reports it reclaimable — no hang.
    #[test]
    fn unconsumed_outputs_latch_stall_fault() {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        let idcs: Vec<u16> = (0..32).collect();
        tcdm.array_mut().store_u16_slice(IDX_A, &idcs);
        tcdm.array_mut().store_u16_slice(IDX_B, &idcs);
        let spec = JoinerSpec {
            count_only: false,
            mode: JoinerMode::Intersect,
            idx_size: IndexSize::U16,
            idx_a: IDX_A,
            vals_a: VALS_A,
            count_a: 32,
            idx_b: IDX_B,
            vals_b: VALS_B,
            count_b: 32,
        };
        let mut joiner = IndexJoiner::new(&spec);
        joiner.set_watchdog(64);
        let mut pa = MemPort::new();
        let mut pb = MemPort::new();
        for now in 0..5000u64 {
            joiner.tick(now, &mut pa, &mut pb);
            tcdm.tick(now, &mut [&mut pa, &mut pb], &[]);
            if joiner.fault().is_some() && joiner.is_done() {
                break;
            }
        }
        match joiner.fault() {
            Some(crate::fault::StreamFaultKind::Stall { cycles }) => assert!(cycles >= 64),
            other => panic!("expected stall fault, got {other:?}"),
        }
        assert!(joiner.is_done(), "frozen job must drain and read done");
    }

    /// A slow consumer must backpressure the comparator without losing
    /// or reordering matches.
    #[test]
    fn slow_consumer_backpressures() {
        let a: Vec<u32> = (0..60).collect();
        let b: Vec<u32> = (0..60).filter(|i| i % 3 == 0).collect();
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        tcdm.array_mut().store_u16_slice(IDX_A, &a.iter().map(|&i| i as u16).collect::<Vec<_>>());
        tcdm.array_mut().store_u16_slice(IDX_B, &b.iter().map(|&i| i as u16).collect::<Vec<_>>());
        for j in 0..60u32 {
            tcdm.array_mut().store_u64(VALS_A + j * 8, 1000 + u64::from(j));
            tcdm.array_mut().store_u64(VALS_B + j * 8, 2000 + u64::from(j));
        }
        let spec = JoinerSpec {
            count_only: false,
            mode: JoinerMode::Intersect,
            idx_size: IndexSize::U16,
            idx_a: IDX_A,
            vals_a: VALS_A,
            count_a: a.len() as u64,
            idx_b: IDX_B,
            vals_b: VALS_B,
            count_b: b.len() as u64,
        };
        let mut joiner = IndexJoiner::new(&spec);
        let mut pa = MemPort::new();
        let mut pb = MemPort::new();
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for now in 0..100_000u64 {
            joiner.tick(now, &mut pa, &mut pb);
            tcdm.tick(now, &mut [&mut pa, &mut pb], &[]);
            if now % 5 == 0 && joiner.a_ready() && joiner.b_ready() {
                out_a.push(joiner.pop_a());
                out_b.push(joiner.pop_b());
            }
            if joiner.is_done() && !joiner.a_ready() {
                break;
            }
        }
        // Matches at every multiple of 3: A position 3k, B position k.
        let exp_a: Vec<u64> = (0..20).map(|k| 1000 + 3 * k).collect();
        let exp_b: Vec<u64> = (0..20).map(|k| 2000 + k).collect();
        assert_eq!(out_a, exp_a);
        assert_eq!(out_b, exp_b);
    }
}
