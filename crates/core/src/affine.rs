//! The four-deep nested affine address iterator.
//!
//! Unchanged from the SSR (§II-A): four nested loops, each with a bound
//! and a byte stride. At each emitted datum the stride of the loop that
//! increments at that step is added onto a single shared pointer — the
//! hardware performs exactly one addition per element, so the per-level
//! strides are *relative* (the delta from the previous address), not
//! nested offsets. [`AffineIterator::from_nested`] converts conventional
//! nested strides into this form.
//!
//! In indirection mode the same iterator is fixed to one dimension with
//! an 8-byte stride and walks the index array instead (see
//! [`crate::lane`]).

/// Maximum nesting depth (as in the paper's configuration).
pub const MAX_DIMS: usize = 4;

/// One affine loop nest walking addresses with a single shared pointer.
#[derive(Clone, Debug)]
pub struct AffineIterator {
    bounds: [u32; MAX_DIMS],
    strides: [i64; MAX_DIMS],
    dims: usize,
    index: [u32; MAX_DIMS],
    pointer: u32,
    done: bool,
}

impl AffineIterator {
    /// Creates an iterator over `dims` nested loops with **relative**
    /// (hardware) strides.
    ///
    /// `bounds[d]` is the iteration count of loop `d` **minus one**
    /// (matching the SSR's configuration registers); loop 0 is innermost.
    /// `strides[d]` is the byte delta added when loop `d` increments.
    ///
    /// # Panics
    /// Panics if `dims` is zero or exceeds [`MAX_DIMS`].
    #[must_use]
    pub fn new(base: u32, dims: usize, bounds: [u32; MAX_DIMS], strides: [i64; MAX_DIMS]) -> Self {
        assert!((1..=MAX_DIMS).contains(&dims), "dims {dims} out of range"); // gate-allow: host-API construction precondition
        Self { bounds, strides, dims, index: [0; MAX_DIMS], pointer: base, done: false }
    }

    /// Creates an iterator from conventional *nested* strides, where the
    /// address of element `(i0, …, i3)` is `base + Σ i_d · nested[d]`.
    /// This converts to the hardware's relative form:
    /// `rel[k] = nested[k] − Σ_{d<k} bounds[d] · nested[d]`.
    #[must_use]
    pub fn from_nested(
        base: u32,
        dims: usize,
        bounds: [u32; MAX_DIMS],
        nested: [i64; MAX_DIMS],
    ) -> Self {
        let mut rel = [0i64; MAX_DIMS];
        for k in 0..dims {
            let below: i64 = (0..k).map(|d| i64::from(bounds[d]) * nested[d]).sum();
            rel[k] = nested[k] - below;
        }
        Self::new(base, dims, bounds, rel)
    }

    /// A one-dimensional iterator: `count` elements spaced `stride` bytes.
    ///
    /// # Panics
    /// Panics if `count` is zero.
    #[must_use]
    pub fn linear(base: u32, count: u32, stride: i64) -> Self {
        assert!(count > 0, "element count must be positive"); // gate-allow: host-API construction precondition
        Self::new(base, 1, [count - 1, 0, 0, 0], [stride, 0, 0, 0])
    }

    /// Total number of addresses this iterator emits.
    #[must_use]
    pub fn total(&self) -> u64 {
        (0..self.dims).map(|d| u64::from(self.bounds[d]) + 1).product()
    }

    /// Whether all addresses have been emitted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Emits the next address, advancing the nest by one stride addition.
    pub fn next_addr(&mut self) -> Option<u32> {
        if self.done {
            return None;
        }
        let addr = self.pointer;
        let mut d = 0;
        loop {
            if d == self.dims {
                self.done = true;
                break;
            }
            if self.index[d] < self.bounds[d] {
                self.index[d] += 1;
                self.pointer = (i64::from(self.pointer) + self.strides[d]) as u32;
                break;
            }
            self.index[d] = 0;
            d += 1;
        }
        Some(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(mut it: AffineIterator) -> Vec<u32> {
        let mut v = Vec::new();
        while let Some(a) = it.next_addr() {
            v.push(a);
        }
        v
    }

    #[test]
    fn linear_walk() {
        let it = AffineIterator::linear(0x100, 4, 8);
        assert_eq!(collect(it), [0x100, 0x108, 0x110, 0x118]);
    }

    #[test]
    fn linear_with_negative_stride() {
        let it = AffineIterator::linear(0x118, 4, -8);
        assert_eq!(collect(it), [0x118, 0x110, 0x108, 0x100]);
    }

    #[test]
    fn relative_strides_add_once_per_element() {
        // 2 elements inner (stride 8), 3 rows; at each row wrap the
        // hardware adds the row stride once.
        let it = AffineIterator::new(0x1000, 2, [1, 2, 0, 0], [8, 0xF8, 0, 0]);
        assert_eq!(collect(it), [0x1000, 0x1008, 0x1100, 0x1108, 0x1200, 0x1208]);
    }

    #[test]
    fn nested_strides_match_loop_nest() {
        // for j in 0..3 { for i in 0..2 { emit base + i*8 + j*0x100 } }
        let it = AffineIterator::from_nested(0x1000, 2, [1, 2, 0, 0], [8, 0x100, 0, 0]);
        assert_eq!(collect(it), [0x1000, 0x1008, 0x1100, 0x1108, 0x1200, 0x1208]);
    }

    #[test]
    fn nested_four_dimensional_is_exhaustive() {
        let bounds = [1, 1, 1, 1];
        let nested = [8, 64, 512, 4096];
        let it = AffineIterator::from_nested(0, 4, bounds, nested);
        assert_eq!(it.total(), 16);
        let addrs = collect(it);
        assert_eq!(addrs.len(), 16);
        // Spot-check against the explicit loop nest.
        let mut expected = Vec::new();
        for i3 in 0..2i64 {
            for i2 in 0..2i64 {
                for i1 in 0..2i64 {
                    for i0 in 0..2i64 {
                        expected.push((i0 * 8 + i1 * 64 + i2 * 512 + i3 * 4096) as u32);
                    }
                }
            }
        }
        assert_eq!(addrs, expected);
    }

    #[test]
    fn single_element() {
        let mut it = AffineIterator::linear(0x42 * 8, 1, 8);
        assert_eq!(it.next_addr(), Some(0x42 * 8));
        assert_eq!(it.next_addr(), None);
        assert!(it.is_done());
    }

    #[test]
    fn nested_non_contiguous_rows() {
        // 3 elements per row spaced 16 B, rows spaced 256 B.
        let it = AffineIterator::from_nested(0, 2, [2, 1, 0, 0], [16, 256, 0, 0]);
        assert_eq!(collect(it), [0, 16, 32, 256, 272, 288]);
    }
}
