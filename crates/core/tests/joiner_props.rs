//! Property tests on the index joiner: for random sorted index streams,
//! the matched value pairs delivered in every mode must equal a naive
//! set-based oracle, for both index widths, arbitrary index-array
//! alignment, and including empty streams.

use issr_core::cfg::{JoinerMode, JoinerSpec};
use issr_core::joiner::IndexJoiner;
use issr_core::serializer::IndexSize;
use issr_mem::port::MemPort;
use issr_mem::tcdm::Tcdm;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const BASE: u32 = 0x0010_0000;
const IDX_A: u32 = BASE + 0x1000;
const IDX_B: u32 = BASE + 0x4000;
const VALS_A: u32 = BASE + 0x8000;
const VALS_B: u32 = BASE + 0xC000;

/// Runs one joiner job to completion; side values are tagged by their
/// stream position (`1000 + pos` / `2000 + pos`).
fn run_joiner(
    mode: JoinerMode,
    idcs_a: &[u32],
    idcs_b: &[u32],
    size: IndexSize,
    misalign_a: u32,
    misalign_b: u32,
) -> (Vec<u64>, Vec<u64>) {
    let mut tcdm = Tcdm::ideal(BASE, 0x10000);
    let idx_a = IDX_A + misalign_a * size.bytes();
    let idx_b = IDX_B + misalign_b * size.bytes();
    for (base, idcs) in [(idx_a, idcs_a), (idx_b, idcs_b)] {
        for (j, &idx) in idcs.iter().enumerate() {
            let addr = base + j as u32 * size.bytes();
            match size {
                IndexSize::U16 => tcdm.array_mut().store_u16(addr, idx as u16),
                IndexSize::U32 => tcdm.array_mut().store_u32(addr, idx),
            }
        }
    }
    for j in 0..idcs_a.len() as u32 {
        tcdm.array_mut().store_u64(VALS_A + j * 8, 1000 + u64::from(j));
    }
    for j in 0..idcs_b.len() as u32 {
        tcdm.array_mut().store_u64(VALS_B + j * 8, 2000 + u64::from(j));
    }
    let spec = JoinerSpec {
        count_only: false,
        mode,
        idx_size: size,
        idx_a,
        vals_a: VALS_A,
        count_a: idcs_a.len() as u64,
        idx_b,
        vals_b: VALS_B,
        count_b: idcs_b.len() as u64,
    };
    let mut joiner = IndexJoiner::new(&spec);
    let mut pa = MemPort::new();
    let mut pb = MemPort::new();
    let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
    for now in 0..200_000u64 {
        joiner.tick(now, &mut pa, &mut pb);
        tcdm.tick(now, &mut [&mut pa, &mut pb], &[]);
        while joiner.a_ready() {
            out_a.push(joiner.pop_a());
        }
        while joiner.b_ready() {
            out_b.push(joiner.pop_b());
        }
        if joiner.is_done() {
            break;
        }
    }
    assert!(joiner.is_done(), "joiner failed to drain");
    (out_a, out_b)
}

/// The naive set-based software model of each mode.
fn oracle(mode: JoinerMode, idcs_a: &[u32], idcs_b: &[u32]) -> (Vec<u64>, Vec<u64>) {
    let pos_a: BTreeMap<u32, u64> =
        idcs_a.iter().enumerate().map(|(j, &i)| (i, j as u64)).collect();
    let pos_b: BTreeMap<u32, u64> =
        idcs_b.iter().enumerate().map(|(j, &i)| (i, j as u64)).collect();
    let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
    match mode {
        JoinerMode::Intersect => {
            for (j, &i) in idcs_a.iter().enumerate() {
                if let Some(&jb) = pos_b.get(&i) {
                    out_a.push(1000 + j as u64);
                    out_b.push(2000 + jb);
                }
            }
        }
        JoinerMode::GatherA => {
            for (j, &i) in idcs_a.iter().enumerate() {
                out_a.push(1000 + j as u64);
                out_b.push(pos_b.get(&i).map_or(0, |&jb| 2000 + jb));
            }
        }
        JoinerMode::Union => {
            let union: BTreeSet<u32> = idcs_a.iter().chain(idcs_b).copied().collect();
            for i in union {
                out_a.push(pos_a.get(&i).map_or(0, |&ja| 1000 + ja));
                out_b.push(pos_b.get(&i).map_or(0, |&jb| 2000 + jb));
            }
        }
    }
    (out_a, out_b)
}

fn mode_strategy() -> impl Strategy<Value = JoinerMode> {
    prop_oneof![Just(JoinerMode::Intersect), Just(JoinerMode::Union), Just(JoinerMode::GatherA),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random sorted duplicate-free streams (possibly empty), random
    /// mode/width/alignment: hardware output equals the set oracle.
    #[test]
    fn joiner_matches_set_oracle(
        set_a in proptest::collection::btree_set(0u32..600, 0..=48),
        set_b in proptest::collection::btree_set(0u32..600, 0..=48),
        mode in mode_strategy(),
        wide in any::<bool>(),
        misalign_a in 0u32..4,
        misalign_b in 0u32..4,
    ) {
        let idcs_a: Vec<u32> = set_a.into_iter().collect();
        let idcs_b: Vec<u32> = set_b.into_iter().collect();
        let size = if wide { IndexSize::U32 } else { IndexSize::U16 };
        let (out_a, out_b) =
            run_joiner(mode, &idcs_a, &idcs_b, size, misalign_a, misalign_b);
        let (exp_a, exp_b) = oracle(mode, &idcs_a, &idcs_b);
        prop_assert_eq!(out_a, exp_a);
        prop_assert_eq!(out_b, exp_b);
    }

    /// Dense overlapping windows stress the match path specifically:
    /// every emission pairs two fetched values, in stream order.
    #[test]
    fn contiguous_windows_intersect_exactly(
        start_a in 0u32..64,
        len_a in 0u32..64,
        start_b in 0u32..64,
        len_b in 0u32..64,
        wide in any::<bool>(),
    ) {
        let idcs_a: Vec<u32> = (start_a..start_a + len_a).collect();
        let idcs_b: Vec<u32> = (start_b..start_b + len_b).collect();
        let size = if wide { IndexSize::U32 } else { IndexSize::U16 };
        let (out_a, out_b) = run_joiner(JoinerMode::Intersect, &idcs_a, &idcs_b, size, 0, 0);
        let lo = start_a.max(start_b);
        let hi = (start_a + len_a).min(start_b + len_b);
        let n = hi.saturating_sub(lo) as usize;
        prop_assert_eq!(out_a.len(), n);
        prop_assert_eq!(out_b.len(), n);
        for (k, (&va, &vb)) in out_a.iter().zip(&out_b).enumerate() {
            let i = lo + k as u32;
            prop_assert_eq!(va, 1000 + u64::from(i - start_a));
            prop_assert_eq!(vb, 2000 + u64::from(i - start_b));
        }
    }
}
