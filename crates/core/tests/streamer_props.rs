//! Property tests on the streamer: for random affine and indirection
//! jobs, the value sequence delivered to the register file must equal
//! the software model of the address pattern, and the lane must drain.

use issr_core::cfg::{cfg_addr, idx_cfg_word, reg};
use issr_core::lane::{Lane, LaneKind};
use issr_core::serializer::IndexSize;
use issr_mem::port::MemPort;
use issr_mem::tcdm::Tcdm;
use proptest::prelude::*;

const BASE: u32 = 0x0010_0000;
const DATA: u32 = 0x0012_0000;

/// Runs a configured lane to completion, returning the streamed values.
fn drain(lane: &mut Lane, tcdm: &mut Tcdm, expect: usize) -> Vec<u64> {
    let mut port = MemPort::new();
    let mut out = Vec::new();
    for now in 0..200_000u64 {
        lane.tick(now, &mut port);
        tcdm.tick(now, &mut [&mut port], &[]);
        while lane.can_pop() {
            out.push(lane.pop());
        }
        if out.len() >= expect && lane.is_idle() {
            break;
        }
    }
    assert!(lane.is_idle(), "lane failed to drain");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 1D/2D affine jobs with random bounds and (relative) strides.
    #[test]
    fn affine_jobs_match_software_model(
        count0 in 1u32..40,
        count1 in 1u32..6,
        stride0 in prop_oneof![Just(8i32), Just(16), Just(24)],
        stride1 in -64i32..256,
        repeat in 0u32..3,
    ) {
        let stride1 = stride1 & !7;
        let mut tcdm = Tcdm::ideal(BASE, 0x40000);
        // Tag every word with its address so reads identify themselves.
        for w in 0..(0x40000 / 8) {
            tcdm.array_mut().store_u64(BASE + w * 8, u64::from(BASE + w * 8));
        }
        let base = BASE + 0x8000;
        let mut lane = Lane::new(LaneKind::Ssr);
        lane.cfg_write(reg::REPEAT, repeat);
        lane.cfg_write(reg::BOUNDS[0], count0 - 1);
        lane.cfg_write(reg::BOUNDS[1], count1 - 1);
        lane.cfg_write(reg::STRIDES[0], stride0 as u32);
        lane.cfg_write(reg::STRIDES[1], stride1 as u32);
        lane.cfg_write(reg::RPTR[1], base); // 2D launch
        // Software model: one shared pointer, one stride add per element.
        let mut expect = Vec::new();
        let mut ptr = i64::from(base);
        for i1 in 0..count1 {
            for i0 in 0..count0 {
                for _ in 0..=repeat {
                    expect.push(ptr as u32 as u64);
                }
                if i0 + 1 < count0 {
                    ptr += i64::from(stride0);
                } else if i1 + 1 < count1 {
                    ptr += i64::from(stride1);
                }
            }
        }
        let got = drain(&mut lane, &mut tcdm, expect.len());
        prop_assert_eq!(got, expect);
    }

    /// Indirection jobs with random indices, width, shift, alignment.
    #[test]
    fn indirect_jobs_match_software_model(
        idcs in proptest::collection::vec(0u32..512, 1..80),
        wide in any::<bool>(),
        shift in 0u32..3,
        misalign in 0u32..4,
    ) {
        let mut tcdm = Tcdm::ideal(BASE, 0x40000);
        for w in 0..(0x40000 / 8) {
            tcdm.array_mut().store_u64(BASE + w * 8, u64::from(w) * 3 + 1);
        }
        let size = if wide { IndexSize::U32 } else { IndexSize::U16 };
        let idx_base = BASE + 0x4000 + misalign * size.bytes();
        // Write the index array at the (possibly word-misaligned) base.
        for (j, &idx) in idcs.iter().enumerate() {
            let a = idx_base + j as u32 * size.bytes();
            if wide {
                tcdm.array_mut().store_u32(a, idx);
            } else {
                tcdm.array_mut().store_u16(a, idx as u16);
            }
        }
        let mut lane = Lane::new(LaneKind::Issr);
        lane.cfg_write(reg::BOUNDS[0], idcs.len() as u32 - 1);
        lane.cfg_write(reg::IDX_CFG, idx_cfg_word(size, shift));
        lane.cfg_write(reg::DATA_BASE, DATA);
        lane.cfg_write(reg::RPTR[0], idx_base);
        let expect: Vec<u64> = idcs
            .iter()
            .map(|&idx| {
                let addr = DATA + (idx << (3 + shift));
                u64::from((addr - BASE) / 8) * 3 + 1
            })
            .collect();
        let got = drain(&mut lane, &mut tcdm, expect.len());
        prop_assert_eq!(got, expect);
        let _ = cfg_addr(0, 0);
    }

    /// The FIFO-credit invariant: under an adversarially slow consumer
    /// the lane never overflows its FIFO (push panics would fail the
    /// test) and still delivers everything.
    #[test]
    fn slow_consumer_never_overflows(count in 1u32..60, stall in 1u64..7) {
        let mut tcdm = Tcdm::ideal(BASE, 0x10000);
        for w in 0..(0x10000 / 8) {
            tcdm.array_mut().store_u64(BASE + w * 8, u64::from(w));
        }
        let mut lane = Lane::new(LaneKind::Ssr);
        lane.cfg_write(reg::BOUNDS[0], count - 1);
        lane.cfg_write(reg::STRIDES[0], 8);
        lane.cfg_write(reg::RPTR[0], BASE);
        let mut port = MemPort::new();
        let mut got = 0u32;
        for now in 0..50_000u64 {
            lane.tick(now, &mut port);
            tcdm.tick(now, &mut [&mut port], &[]);
            if now % stall == 0 && lane.can_pop() {
                lane.pop();
                got += 1;
            }
            if got == count && lane.is_idle() {
                break;
            }
        }
        prop_assert_eq!(got, count);
    }
}
