//! Seeded workload generators.
//!
//! Following §IV: dense tensors sample normally-distributed values;
//! sparse vectors combine normally-distributed values with
//! uniformly-distributed indices at a fixed nonzero count; sparse
//! matrices are generated with a controlled average row density for the
//! nnz/row sweeps of Figs. 4b/4c. Everything is driven by an explicit
//! seed so every experiment is reproducible.

use crate::csr::CsrMatrix;
use crate::fiber::SparseFiber;
use crate::index::IndexValue;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Creates the deterministic generator used throughout the benches.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A standard-normal sample via Box–Muller (keeps us on the plain `rand`
/// crate without `rand_distr`).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A dense vector of `len` normally-distributed values.
#[must_use]
pub fn dense_vector(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| normal(rng)).collect()
}

/// A sparse vector with exactly `nnz` nonzeros at distinct
/// uniformly-distributed indices (sorted), normally-distributed values.
///
/// # Panics
/// Panics if `nnz > dim`.
#[must_use]
pub fn sparse_vector<I: IndexValue>(rng: &mut StdRng, dim: usize, nnz: usize) -> SparseFiber<I> {
    assert!(nnz <= dim, "cannot place {nnz} nonzeros in dimension {dim}");
    // Partial Fisher–Yates: uniform distinct indices.
    let mut pool: Vec<usize> = (0..dim).collect();
    pool.partial_shuffle(rng, nnz);
    let mut idcs: Vec<usize> = pool[..nnz].to_vec();
    idcs.sort_unstable();
    let vals = (0..nnz).map(|_| normal(rng)).collect();
    SparseFiber::new(dim, idcs.into_iter().map(I::from_usize).collect(), vals)
        .expect("generated fiber is valid")
}

/// A CSR matrix where every row holds exactly `row_nnz` nonzeros at
/// distinct uniform columns — the controlled-density workload for the
/// nnz/row sweeps.
///
/// # Panics
/// Panics if `row_nnz > ncols`.
#[must_use]
pub fn csr_fixed_row_nnz<I: IndexValue>(
    rng: &mut StdRng,
    nrows: usize,
    ncols: usize,
    row_nnz: usize,
) -> CsrMatrix<I> {
    assert!(row_nnz <= ncols, "row nnz {row_nnz} exceeds {ncols} columns");
    let mut triplets = Vec::with_capacity(nrows * row_nnz);
    let mut pool: Vec<usize> = (0..ncols).collect();
    for r in 0..nrows {
        pool.partial_shuffle(rng, row_nnz);
        for &c in &pool[..row_nnz] {
            triplets.push((r, c, normal(rng)));
        }
    }
    CsrMatrix::from_triplets(nrows, ncols, &triplets)
}

/// A CSR matrix with `nnz` total nonzeros at uniform positions
/// (duplicate draws are re-sampled), giving naturally varying row
/// lengths — the "real-world-like" workload used for suite stand-ins.
#[must_use]
pub fn csr_uniform<I: IndexValue>(
    rng: &mut StdRng,
    nrows: usize,
    ncols: usize,
    nnz: usize,
) -> CsrMatrix<I> {
    let capacity = nrows.saturating_mul(ncols);
    let nnz = nnz.min(capacity);
    let mut seen = std::collections::HashSet::with_capacity(nnz * 2);
    let mut triplets = Vec::with_capacity(nnz);
    while triplets.len() < nnz {
        let r = rng.gen_range(0..nrows);
        let c = rng.gen_range(0..ncols);
        if seen.insert((r, c)) {
            triplets.push((r, c, normal(rng)));
        }
    }
    CsrMatrix::from_triplets(nrows, ncols, &triplets)
}

/// A CSR matrix with exactly `row_nnz` nonzeros per row drawn from a
/// window of `window` columns around the row's diagonal position —
/// modelling the column locality real-world matrices exhibit (PDE
/// stencils, meshes, graphs with community structure). Window width
/// `ncols` degenerates to the uniform generator.
///
/// # Panics
/// Panics if `row_nnz > window` or `window > ncols`.
#[must_use]
pub fn csr_clustered<I: IndexValue>(
    rng: &mut StdRng,
    nrows: usize,
    ncols: usize,
    row_nnz: usize,
    window: usize,
) -> CsrMatrix<I> {
    assert!(row_nnz <= window && window <= ncols, "window must satisfy row_nnz <= window <= ncols");
    let mut triplets = Vec::with_capacity(nrows * row_nnz);
    let mut pool: Vec<usize> = (0..window).collect();
    for r in 0..nrows {
        let center = if nrows > 1 { r * ncols / nrows } else { 0 };
        let lo = center.saturating_sub(window / 2).min(ncols - window);
        pool.partial_shuffle(rng, row_nnz);
        for &off in &pool[..row_nnz] {
            triplets.push((r, lo + off, normal(rng)));
        }
    }
    CsrMatrix::from_triplets(nrows, ncols, &triplets)
}

/// A banded CSR matrix (`bandwidth` diagonals each side), modelling the
/// stencil/PDE matrices common in SuiteSparse.
#[must_use]
pub fn csr_banded<I: IndexValue>(rng: &mut StdRng, n: usize, bandwidth: usize) -> CsrMatrix<I> {
    let mut triplets = Vec::new();
    for r in 0..n {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth + 1).min(n);
        for c in lo..hi {
            triplets.push((r, c, normal(rng)));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Two sparse vectors over the same axis with a controlled index
/// overlap: `overlap` (0..=1) is the fraction of the smaller nonzero
/// count shared between the two index sets — the knob the sparse-sparse
/// joiner sweeps (match density drives its emission rate).
///
/// # Panics
/// Panics if the requested counts do not fit the dimension or `overlap`
/// is outside `[0, 1]`.
#[must_use]
pub fn overlapping_pair<I: IndexValue>(
    rng: &mut StdRng,
    dim: usize,
    nnz_a: usize,
    nnz_b: usize,
    overlap: f64,
) -> (SparseFiber<I>, SparseFiber<I>) {
    assert!((0.0..=1.0).contains(&overlap), "overlap must be a fraction");
    let a = sparse_vector::<I>(rng, dim, nnz_a);
    let shared = (overlap * nnz_a.min(nnz_b) as f64).round() as usize;
    let fresh = nnz_b - shared;
    assert!(fresh <= dim - nnz_a, "cannot place {fresh} distinct B-only indices in {dim}");
    // Shared part: a uniform sample of A's index set.
    let mut from_a: Vec<usize> = a.idcs().iter().map(|&i| i.to_usize()).collect();
    from_a.partial_shuffle(rng, shared);
    let mut idcs: Vec<usize> = from_a[..shared].to_vec();
    // Fresh part: a uniform sample of the complement.
    let in_a: std::collections::HashSet<usize> = a.idcs().iter().map(|&i| i.to_usize()).collect();
    let mut complement: Vec<usize> = (0..dim).filter(|i| !in_a.contains(i)).collect();
    complement.partial_shuffle(rng, fresh);
    idcs.extend_from_slice(&complement[..fresh]);
    idcs.sort_unstable();
    let vals = (0..idcs.len()).map(|_| normal(rng)).collect();
    let b = SparseFiber::new(dim, idcs.into_iter().map(I::from_usize).collect(), vals)
        .expect("generated fiber is valid");
    (a, b)
}

/// A codebook-compressed vector: `codes[i]` selects one of
/// `codebook.len()` shared values (§III-C, codebook decoding).
#[must_use]
pub fn codebook_vector<I: IndexValue>(
    rng: &mut StdRng,
    len: usize,
    codebook_size: usize,
) -> (Vec<f64>, Vec<I>) {
    let codebook: Vec<f64> = (0..codebook_size).map(|_| normal(rng)).collect();
    let codes: Vec<I> = (0..len).map(|_| I::from_usize(rng.gen_range(0..codebook_size))).collect();
    (codebook, codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vector_has_exact_nnz_and_sorted_unique_indices() {
        let mut r = rng(42);
        let f = sparse_vector::<u16>(&mut r, 1000, 100);
        assert_eq!(f.nnz(), 100);
        let mut prev = None;
        for (i, _) in f.iter() {
            assert!(prev.is_none_or(|p| p < i), "indices must be strictly increasing");
            prev = Some(i);
        }
    }

    #[test]
    fn fixed_row_nnz_is_exact() {
        let mut r = rng(7);
        let m = csr_fixed_row_nnz::<u32>(&mut r, 50, 128, 16);
        assert_eq!(m.nnz(), 50 * 16);
        for row in 0..50 {
            assert_eq!(m.row(row).count(), 16);
        }
        assert!(m.validate().is_ok());
    }

    #[test]
    fn uniform_matrix_hits_target_nnz() {
        let mut r = rng(1);
        let m = csr_uniform::<u32>(&mut r, 100, 100, 500);
        assert_eq!(m.nnz(), 500);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn banded_matrix_shape() {
        let mut r = rng(3);
        let m = csr_banded::<u16>(&mut r, 10, 1);
        // Tridiagonal: 3n - 2 nonzeros.
        assert_eq!(m.nnz(), 28);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn overlapping_pair_hits_target_overlap() {
        let mut r = rng(13);
        for overlap in [0.0, 0.25, 0.5, 1.0] {
            let (a, b) = overlapping_pair::<u16>(&mut r, 2000, 200, 150, overlap);
            assert_eq!(a.nnz(), 200);
            assert_eq!(b.nnz(), 150);
            let a_set: std::collections::HashSet<usize> = a.iter().map(|(i, _)| i).collect();
            let shared = b.iter().filter(|(i, _)| a_set.contains(i)).count();
            let expect = (overlap * 150.0).round() as usize;
            assert_eq!(shared, expect, "overlap {overlap}");
            let mut prev = None;
            for (i, _) in b.iter() {
                assert!(prev.is_none_or(|p| p < i), "B indices sorted unique");
                prev = Some(i);
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = sparse_vector::<u32>(&mut rng(5), 256, 32);
        let b = sparse_vector::<u32>(&mut rng(5), 256, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_values_have_sane_moments() {
        let mut r = rng(11);
        let v = dense_vector(&mut r, 20_000);
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let var: f64 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn codebook_codes_in_range() {
        let mut r = rng(9);
        let (book, codes) = codebook_vector::<u16>(&mut r, 500, 16);
        assert_eq!(book.len(), 16);
        assert_eq!(codes.len(), 500);
        assert!(codes.iter().all(|&c| usize::from(c) < 16));
    }
}
