//! Index-width abstraction.
//!
//! The paper evaluates every kernel for 16-bit and 32-bit index arrays;
//! formats here are generic over [`IndexValue`] so workloads can be
//! materialized in either width without duplication.

use std::fmt::Debug;

/// An unsigned type usable as a sparse index (16- or 32-bit).
pub trait IndexValue: Copy + Debug + Ord + Send + Sync + 'static {
    /// Width marker matching `issr-core`'s serializer configuration.
    const BYTES: u32;
    /// Human-readable width name (for reports: "16" / "32").
    const NAME: &'static str;

    /// Converts from a usize position.
    ///
    /// # Panics
    /// Panics if the value does not fit the index width.
    fn from_usize(v: usize) -> Self;

    /// Widens to usize.
    fn to_usize(self) -> usize;
}

impl IndexValue for u16 {
    const BYTES: u32 = 2;
    const NAME: &'static str = "16";

    fn from_usize(v: usize) -> Self {
        u16::try_from(v).expect("index does not fit in 16 bits")
    }

    fn to_usize(self) -> usize {
        usize::from(self)
    }
}

impl IndexValue for u32 {
    const BYTES: u32 = 4;
    const NAME: &'static str = "32";

    fn from_usize(v: usize) -> Self {
        u32::try_from(v).expect("index does not fit in 32 bits")
    }

    fn to_usize(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert_eq!(u16::from_usize(65535).to_usize(), 65535);
        assert_eq!(u32::from_usize(1 << 20).to_usize(), 1 << 20);
        assert_eq!(u16::BYTES, 2);
        assert_eq!(u32::BYTES, 4);
    }

    #[test]
    #[should_panic(expected = "16 bits")]
    fn overflow_panics() {
        let _ = u16::from_usize(65536);
    }
}
