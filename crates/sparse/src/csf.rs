//! Compressed sparse fiber (CSF) tensors.
//!
//! CSF generalizes CSR to higher orders by nesting fibers (§III-A,
//! [10]): an order-3 tensor stores a fiber of slice indices, each slice
//! a fiber of row indices, each row a fiber of column indices with the
//! values at the leaves. The ISSR accelerates the innermost
//! (fiber × dense) products while the core walks the upper levels.

use crate::index::IndexValue;

/// An order-3 CSF tensor with `I`-width leaf indices.
///
/// # Examples
/// ```
/// use issr_sparse::csf::CsfTensor;
/// let t = CsfTensor::<u16>::from_coords(
///     [2, 3, 4],
///     &[([0, 1, 2], 5.0), ([1, 0, 0], -1.0)],
/// );
/// assert_eq!(t.nnz(), 2);
/// assert_eq!(t.dims(), [2, 3, 4]);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct CsfTensor<I> {
    dims: [usize; 3],
    /// Indices of nonempty slices (mode 0).
    slice_idcs: Vec<u32>,
    /// Row-fiber ranges per slice (`slice_ptr[s]..slice_ptr[s+1]`).
    slice_ptr: Vec<u32>,
    /// Indices of nonempty rows (mode 1).
    row_idcs: Vec<u32>,
    /// Leaf ranges per row.
    row_ptr: Vec<u32>,
    /// Leaf column indices (mode 2).
    leaf_idcs: Vec<I>,
    /// Leaf values.
    vals: Vec<f64>,
}

impl<I: IndexValue> CsfTensor<I> {
    /// Builds from coordinate/value pairs; duplicates are summed.
    ///
    /// # Panics
    /// Panics if a coordinate exceeds `dims`.
    #[must_use]
    pub fn from_coords(dims: [usize; 3], entries: &[([usize; 3], f64)]) -> Self {
        let mut sorted: Vec<([usize; 3], f64)> = entries.to_vec();
        sorted.sort_by_key(|&(c, _)| c);
        let mut t = Self {
            dims,
            slice_idcs: Vec::new(),
            slice_ptr: vec![0],
            row_idcs: Vec::new(),
            row_ptr: vec![0],
            leaf_idcs: Vec::new(),
            vals: Vec::new(),
        };
        for &([i, j, k], v) in &sorted {
            assert!(i < dims[0] && j < dims[1] && k < dims[2], "coordinate out of range");
            let same_slice = t.slice_idcs.last() == Some(&(i as u32));
            if !same_slice {
                t.slice_idcs.push(i as u32);
                t.slice_ptr.push(*t.slice_ptr.last().expect("non-empty"));
            }
            let same_row = same_slice && t.row_idcs.last() == Some(&(j as u32));
            if !same_row {
                t.row_idcs.push(j as u32);
                t.row_ptr.push(*t.row_ptr.last().expect("non-empty"));
                *t.slice_ptr.last_mut().expect("non-empty") += 1;
            }
            let same_leaf = same_row && t.leaf_idcs.last().map(|i| i.to_usize()) == Some(k);
            if same_leaf {
                *t.vals.last_mut().expect("non-empty") += v;
            } else {
                t.leaf_idcs.push(I::from_usize(k));
                t.vals.push(v);
                *t.row_ptr.last_mut().expect("non-empty") += 1;
            }
        }
        t
    }

    /// Tensor dimensions.
    #[must_use]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of nonempty slices.
    #[must_use]
    pub fn n_slices(&self) -> usize {
        self.slice_idcs.len()
    }

    /// Iterates nonempty slices: `(slice_index, row_fiber_range)`.
    pub fn slices(&self) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> + '_ {
        self.slice_idcs
            .iter()
            .enumerate()
            .map(|(s, &i)| (i as usize, self.slice_ptr[s] as usize..self.slice_ptr[s + 1] as usize))
    }

    /// Row index and leaf range of compressed row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> (usize, std::ops::Range<usize>) {
        (self.row_idcs[r] as usize, self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize)
    }

    /// Leaf column indices.
    #[must_use]
    pub fn leaf_idcs(&self) -> &[I] {
        &self.leaf_idcs
    }

    /// Leaf values.
    #[must_use]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Iterates every `(i, j, k, value)` entry.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize, f64)> + '_ {
        self.slices().flat_map(move |(i, rows)| {
            rows.flat_map(move |r| {
                let (j, leaves) = self.row(r);
                leaves.map(move |l| (i, j, self.leaf_idcs[l].to_usize(), self.vals[l]))
            })
        })
    }

    /// Tensor-times-vector along mode 2: `Y[i][j] = Σ_k T[i][j][k] x[k]`,
    /// returning a dense matrix. This is the operation the paper's SpVV
    /// kernel accelerates per compressed row.
    ///
    /// # Panics
    /// Panics if `x.len() != dims[2]`.
    #[must_use]
    pub fn ttv(&self, x: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(x.len(), self.dims[2], "vector length mismatch");
        let mut out = vec![vec![0.0; self.dims[1]]; self.dims[0]];
        for (i, j, k, v) in self.iter() {
            out[i][j] += v * x[k];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsfTensor<u16> {
        CsfTensor::from_coords(
            [2, 2, 4],
            &[([0, 0, 1], 1.0), ([0, 0, 3], 2.0), ([0, 1, 0], 3.0), ([1, 1, 2], 4.0)],
        )
    }

    #[test]
    fn structure_counts() {
        let t = sample();
        assert_eq!(t.nnz(), 4);
        assert_eq!(t.n_slices(), 2);
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries, [(0, 0, 1, 1.0), (0, 0, 3, 2.0), (0, 1, 0, 3.0), (1, 1, 2, 4.0)]);
    }

    #[test]
    fn duplicates_sum() {
        let t = CsfTensor::<u32>::from_coords([1, 1, 2], &[([0, 0, 1], 1.0), ([0, 0, 1], 2.0)]);
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.vals(), &[3.0]);
    }

    #[test]
    fn ttv_matches_dense() {
        let t = sample();
        let x = [1.0, 10.0, 100.0, 1000.0];
        let y = t.ttv(&x);
        assert_eq!(y[0][0], 1.0 * 10.0 + 2.0 * 1000.0);
        assert_eq!(y[0][1], 3.0);
        assert_eq!(y[1][1], 4.0 * 100.0);
        assert_eq!(y[1][0], 0.0);
    }

    #[test]
    fn empty_tensor() {
        let t = CsfTensor::<u16>::from_coords([3, 3, 3], &[]);
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.n_slices(), 0);
        assert_eq!(t.ttv(&[1.0, 1.0, 1.0]), vec![vec![0.0; 3]; 3]);
    }
}
