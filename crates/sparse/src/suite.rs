//! The synthetic matrix suite standing in for the paper's SuiteSparse
//! selection.
//!
//! The paper evaluates on real-world matrices with 2 k–3.2 k columns and
//! 1.3 k–680.3 k nonzeros, naming `G11`/`G7` (power/energy anchors) and
//! `Ragusa18` (the tiny CsrMM edge case). The collection itself is not
//! redistributable inside this repository, so the suite below generates
//! **dimension-faithful synthetic stand-ins** with a seeded RNG: each
//! entry reproduces the published (or catalogued) shape — rows, columns,
//! nonzero count, and a structure family — which are the parameters the
//! paper's figures actually depend on (utilization and speedup are
//! functions of nnz/row and size, energy of utilization). Users with the
//! real files can load them through [`crate::mm`] instead; see DESIGN.md
//! for the substitution rationale.

use crate::csr::CsrMatrix;
use crate::gen;
use crate::index::IndexValue;

/// Structural family of a stand-in matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Structure {
    /// Uniformly random positions (graphs, optimization problems).
    Uniform,
    /// Banded/stencil structure (PDE discretizations).
    Banded {
        /// Diagonals on each side of the main diagonal.
        bandwidth: usize,
    },
}

/// One suite entry: the published shape of a SuiteSparse matrix.
#[derive(Clone, Copy, Debug)]
pub struct SuiteEntry {
    /// Lower-cased name of the SuiteSparse matrix this stands in for.
    pub name: &'static str,
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Nonzeros (for banded entries this is implied by the bandwidth).
    pub nnz: usize,
    /// Structure family.
    pub structure: Structure,
}

impl SuiteEntry {
    /// Average nonzeros per row.
    #[must_use]
    pub fn avg_row_nnz(&self) -> f64 {
        self.nnz as f64 / self.nrows as f64
    }

    /// CSR footprint of the **full-size** stand-in in bytes for index
    /// width `I`: 4-byte row pointers, `I`-byte column indices, 8-byte
    /// values. The honest input size of the out-of-TCDM system paths.
    #[must_use]
    pub fn csr_bytes<I: IndexValue>(&self) -> u64 {
        (self.nrows as u64 + 1) * 4 + self.nnz as u64 * (u64::from(I::BYTES) + 8)
    }

    /// Whether the full-size stand-in fits a scratchpad of
    /// `tcdm_bytes`. Entries that do not are exactly the ones the
    /// multi-cluster system kernels exist for — the single-cluster
    /// sweeps clamp them to principal windows instead
    /// ([`principal_window`]).
    #[must_use]
    pub fn fits_tcdm<I: IndexValue>(&self, tcdm_bytes: u64) -> bool {
        self.csr_bytes::<I>() <= tcdm_bytes
    }

    /// Materializes the stand-in with a deterministic per-name seed.
    #[must_use]
    pub fn build<I: IndexValue>(&self) -> CsrMatrix<I> {
        let seed = self
            .name
            .bytes()
            .fold(0xCAFE_F00Du64, |acc, b| acc.wrapping_mul(31).wrapping_add(u64::from(b)));
        let mut rng = gen::rng(seed);
        match self.structure {
            Structure::Uniform => gen::csr_uniform(&mut rng, self.nrows, self.ncols, self.nnz),
            Structure::Banded { bandwidth } => {
                gen::csr_banded(&mut rng, self.nrows.max(self.ncols), bandwidth)
            }
        }
    }
}

/// The evaluation suite: the three matrices the paper names, plus
/// stand-ins spanning the published envelope (2 k–3.2 k columns,
/// 1.3 k–680.3 k nonzeros, varying aspect ratios and densities).
#[must_use]
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        // Named in the paper. G11: an 800-node 4-regular toroidal graph
        // (sparse rows → the paper's low-efficiency power anchor).
        SuiteEntry {
            name: "g11",
            nrows: 800,
            ncols: 800,
            nnz: 3200,
            structure: Structure::Uniform,
        },
        // G7: an 800-node random graph with dense rows (the paper's
        // high-efficiency power anchor).
        SuiteEntry {
            name: "g7",
            nrows: 800,
            ncols: 800,
            nnz: 38_352,
            structure: Structure::Uniform,
        },
        // Ragusa18: the tiny 23×23 web matrix with 64 nonzeros used for
        // the CsrMM edge case (§IV-A).
        SuiteEntry {
            name: "ragusa18",
            nrows: 23,
            ncols: 23,
            nnz: 64,
            structure: Structure::Uniform,
        },
        // Envelope stand-ins (catalogued SuiteSparse shapes).
        SuiteEntry {
            name: "tols2000",
            nrows: 2000,
            ncols: 2000,
            nnz: 5184,
            structure: Structure::Uniform,
        },
        SuiteEntry {
            name: "west2021",
            nrows: 2021,
            ncols: 2021,
            nnz: 7310,
            structure: Structure::Uniform,
        },
        SuiteEntry {
            name: "rdb2048",
            nrows: 2048,
            ncols: 2048,
            nnz: 12_032,
            structure: Structure::Banded { bandwidth: 2 },
        },
        SuiteEntry {
            name: "mhd3200b",
            nrows: 3200,
            ncols: 3200,
            nnz: 18_316,
            structure: Structure::Banded { bandwidth: 2 },
        },
        SuiteEntry {
            name: "plat1919",
            nrows: 1919,
            ncols: 1919,
            nnz: 32_399,
            structure: Structure::Uniform,
        },
        SuiteEntry {
            name: "orani678",
            nrows: 2529,
            ncols: 2529,
            nnz: 90_158,
            structure: Structure::Uniform,
        },
        SuiteEntry {
            name: "psmigr_1",
            nrows: 3140,
            ncols: 3140,
            nnz: 543_160,
            structure: Structure::Uniform,
        },
        // Densest envelope point: ~680 k nonzeros at 3.2 k columns.
        SuiteEntry {
            name: "dense212",
            nrows: 3200,
            ncols: 3200,
            nnz: 680_300,
            structure: Structure::Uniform,
        },
    ]
}

/// Looks up a suite entry by name.
#[must_use]
pub fn by_name(name: &str) -> Option<SuiteEntry> {
    suite().into_iter().find(|e| e.name == name)
}

/// The leading `k`-by-`k` principal submatrix — the windowed accessor
/// the TCDM-resident sweeps clamp oversized stand-ins with (the
/// full-size builds stay available through [`SuiteEntry::build`]).
#[must_use]
pub fn principal_window<I: IndexValue>(m: &CsrMatrix<I>, k: usize) -> CsrMatrix<I> {
    let triplets: Vec<(usize, usize, f64)> = (0..k.min(m.nrows()))
        .flat_map(|r| m.row(r).filter(|&(c, _)| c < k).map(move |(c, v)| (r, c, v)))
        .collect();
    CsrMatrix::from_triplets(k, k, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_spans_published_envelope() {
        let entries = suite();
        assert!(entries.len() >= 10);
        let min_nnz = entries.iter().map(|e| e.nnz).min().unwrap();
        let max_nnz = entries.iter().map(|e| e.nnz).max().unwrap();
        assert!(min_nnz <= 1_300, "paper floor is 1.3k nnz (tiny ragusa18 aside)");
        assert!(max_nnz >= 680_000, "paper ceiling is 680.3k nnz");
        // All entries fit 16-bit column indices (≤ 3.2 k columns).
        assert!(entries.iter().all(|e| e.ncols <= 65_536));
    }

    #[test]
    fn named_anchors_present() {
        for name in ["g7", "g11", "ragusa18"] {
            let e = by_name(name).expect(name);
            let m: CsrMatrix<u32> = e.build();
            assert!(m.validate().is_ok());
        }
        assert_eq!(by_name("ragusa18").unwrap().nnz, 64);
    }

    #[test]
    fn uniform_builds_match_declared_nnz() {
        let e = by_name("g11").unwrap();
        let m: CsrMatrix<u16> = e.build();
        assert_eq!(m.nnz(), e.nnz);
        assert_eq!(m.nrows(), e.nrows);
    }

    #[test]
    fn builds_are_deterministic() {
        let e = by_name("tols2000").unwrap();
        let a: CsrMatrix<u32> = e.build();
        let b: CsrMatrix<u32> = e.build();
        assert_eq!(a, b);
    }

    #[test]
    fn full_size_metadata_is_honest() {
        // The paper's TCDM is 256 KiB; several stand-ins exceed it at
        // full size — the inputs the out-of-TCDM system kernels take.
        let tcdm = 256 * 1024;
        let psmigr = by_name("psmigr_1").unwrap();
        assert!(!psmigr.fits_tcdm::<u16>(tcdm), "psmigr_1 must exceed the TCDM");
        assert!(by_name("ragusa18").unwrap().fits_tcdm::<u16>(tcdm));
        // The byte formula matches the materialized matrix exactly.
        let e = by_name("g11").unwrap();
        let m: CsrMatrix<u16> = e.build();
        let bytes = (m.nrows() as u64 + 1) * 4 + m.nnz() as u64 * (2 + 8);
        assert_eq!(e.csr_bytes::<u16>(), bytes);
        assert!(e.csr_bytes::<u32>() > e.csr_bytes::<u16>());
    }

    #[test]
    fn principal_window_clamps_shape_and_content() {
        let e = by_name("g7").unwrap();
        let m: CsrMatrix<u16> = e.build();
        let w = principal_window(&m, 100);
        assert_eq!((w.nrows(), w.ncols()), (100, 100));
        assert!(w.nnz() < m.nnz());
        for r in 0..100 {
            let full: Vec<_> = m.row(r).filter(|&(c, _)| c < 100).collect();
            let win: Vec<_> = w.row(r).collect();
            assert_eq!(full, win, "row {r}");
        }
        // A window at least as large as the matrix is the identity.
        let id = principal_window(&m, m.nrows());
        assert_eq!(id.nnz(), m.nnz());
    }

    #[test]
    fn g7_is_denser_than_g11() {
        assert!(
            by_name("g7").unwrap().avg_row_nnz() > 10.0 * by_name("g11").unwrap().avg_row_nnz()
        );
    }
}
