//! Matrix Market (coordinate format) I/O.
//!
//! Lets users run the benchmark harnesses on the *real* SuiteSparse
//! matrices the paper used, when they have the files: load with
//! [`read_matrix_market`] and feed the result anywhere a suite stand-in
//! is accepted.

use crate::csr::CsrMatrix;
use crate::index::IndexValue;
use std::io::{BufRead, Write};

/// Error reading a Matrix Market stream.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Header or entry could not be parsed.
    Parse { line: usize, reason: String },
    /// The file declares an unsupported variant.
    Unsupported(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "i/o error: {e}"),
            MmError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            MmError::Unsupported(what) => write!(f, "unsupported matrix market variant: {what}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

/// Reads a coordinate-format Matrix Market matrix (real or integer
/// values; `general` or `symmetric`).
///
/// # Errors
/// Returns [`MmError`] on malformed input or unsupported variants
/// (complex values, dense arrays).
pub fn read_matrix_market<I: IndexValue, R: BufRead>(reader: R) -> Result<CsrMatrix<I>, MmError> {
    let mut lines = reader.lines().enumerate();
    // Header.
    let (ln, header) = lines
        .next()
        .ok_or_else(|| MmError::Parse { line: 0, reason: "empty file".into() })
        .and_then(|(n, l)| Ok((n, l?)))?;
    let header_lower = header.to_lowercase();
    if !header_lower.starts_with("%%matrixmarket") {
        return Err(MmError::Parse {
            line: ln + 1,
            reason: "missing %%MatrixMarket header".into(),
        });
    }
    if !header_lower.contains("coordinate") {
        return Err(MmError::Unsupported("non-coordinate (dense array) format".into()));
    }
    if header_lower.contains("complex") {
        return Err(MmError::Unsupported("complex values".into()));
    }
    let symmetric = header_lower.contains("symmetric");
    let pattern = header_lower.contains("pattern");
    // Size line (skip comments).
    let mut size_line = None;
    for (n, line) in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some((n, trimmed.to_owned()));
        break;
    }
    let (ln, size_line) =
        size_line.ok_or(MmError::Parse { line: 0, reason: "missing size line".into() })?;
    let dims: Vec<usize> =
        size_line
            .split_whitespace()
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|e| MmError::Parse { line: ln + 1, reason: format!("size line: {e}") })?;
    if dims.len() != 3 {
        return Err(MmError::Parse { line: ln + 1, reason: "size line needs 3 fields".into() });
    }
    let (nrows, ncols, declared_nnz) = (dims[0], dims[1], dims[2]);
    let mut triplets = Vec::with_capacity(declared_nnz);
    for (n, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let parse_coord = |s: Option<&str>, what: &str| -> Result<usize, MmError> {
            s.ok_or_else(|| MmError::Parse { line: n + 1, reason: format!("missing {what}") })?
                .parse::<usize>()
                .map_err(|e| MmError::Parse { line: n + 1, reason: format!("{what}: {e}") })
        };
        let r = parse_coord(fields.next(), "row")?;
        let c = parse_coord(fields.next(), "col")?;
        if r == 0 || c == 0 {
            return Err(MmError::Parse { line: n + 1, reason: "coordinates are 1-based".into() });
        }
        let v = if pattern {
            1.0
        } else {
            fields
                .next()
                .ok_or_else(|| MmError::Parse { line: n + 1, reason: "missing value".into() })?
                .parse::<f64>()
                .map_err(|e| MmError::Parse { line: n + 1, reason: format!("value: {e}") })?
        };
        triplets.push((r - 1, c - 1, v));
        if symmetric && r != c {
            triplets.push((c - 1, r - 1, v));
        }
    }
    Ok(CsrMatrix::from_triplets(nrows, ncols, &triplets))
}

/// Writes a matrix in coordinate `general real` format.
///
/// # Errors
/// Returns any underlying I/O error.
pub fn write_matrix_market<I: IndexValue, W: Write>(
    mut writer: W,
    m: &CsrMatrix<I>,
) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for r in 0..m.nrows() {
        for (c, v) in m.row(r) {
            writeln!(writer, "{} {} {v:e}", r + 1, c + 1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let m = CsrMatrix::<u32>::from_triplets(3, 4, &[(0, 1, 1.5), (2, 0, -2.0), (2, 3, 0.25)]);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let back: CsrMatrix<u32> = read_matrix_market(Cursor::new(&buf)).unwrap();
        assert_eq!(back.to_dense(), m.to_dense());
    }

    #[test]
    fn symmetric_expansion() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % a comment\n\
                    2 2 2\n\
                    1 1 3.0\n\
                    2 1 1.0\n";
        let m: CsrMatrix<u16> = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.to_dense(), vec![vec![3.0, 1.0], vec![1.0, 0.0]]);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 1\n\
                    2 2\n";
        let m: CsrMatrix<u16> = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.to_dense()[1][1], 1.0);
    }

    #[test]
    fn rejects_complex() {
        let text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 2.0\n";
        let err = read_matrix_market::<u32, _>(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, MmError::Unsupported(_)));
    }

    #[test]
    fn rejects_zero_based_coords() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5.0\n";
        let err = read_matrix_market::<u32, _>(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, MmError::Parse { .. }));
    }
}
