//! Compressed sparse rows (CSR) and columns (CSC).
//!
//! A CSR matrix concatenates the sparse row fibers of a matrix and adds
//! a pointer array delimiting them (§III-A). Row pointers are 32-bit, as
//! in the paper's kernels, "enabling broad scaling in rows"; the column
//! indices are generic over the 16/32-bit width.

use crate::fiber::{FormatError, SparseFiber};
use crate::index::IndexValue;

/// A CSR matrix with `I`-width column indices.
///
/// # Examples
/// ```
/// use issr_sparse::csr::CsrMatrix;
/// // [[1, 0], [0, 2]]
/// let m = CsrMatrix::<u16>::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.to_dense(), vec![vec![1.0, 0.0], vec![0.0, 2.0]]);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct CsrMatrix<I> {
    nrows: usize,
    ncols: usize,
    ptr: Vec<u32>,
    idcs: Vec<I>,
    vals: Vec<f64>,
}

impl<I: IndexValue> CsrMatrix<I> {
    /// Builds from raw arrays, validating the invariants.
    ///
    /// # Errors
    /// Returns [`FormatError`] on inconsistent pointers, mismatched
    /// lengths, or out-of-range column indices.
    pub fn new(
        nrows: usize,
        ncols: usize,
        ptr: Vec<u32>,
        idcs: Vec<I>,
        vals: Vec<f64>,
    ) -> Result<Self, FormatError> {
        if idcs.len() != vals.len() {
            return Err(FormatError::LengthMismatch { idcs: idcs.len(), vals: vals.len() });
        }
        if ptr.len() != nrows + 1 {
            return Err(FormatError::PtrBounds { expected: nrows + 1, got: ptr.len() });
        }
        if ptr[0] != 0 || ptr[nrows] as usize != vals.len() {
            return Err(FormatError::PtrBounds { expected: vals.len(), got: ptr[nrows] as usize });
        }
        for r in 0..nrows {
            if ptr[r] > ptr[r + 1] {
                return Err(FormatError::NonMonotonicPtr { row: r });
            }
        }
        for &c in &idcs {
            if c.to_usize() >= ncols {
                return Err(FormatError::IndexOutOfRange { index: c.to_usize(), dim: ncols });
            }
        }
        Ok(Self { nrows, ncols, ptr, idcs, vals })
    }

    /// Builds from `(row, col, value)` triplets; duplicates are summed.
    ///
    /// # Panics
    /// Panics if a coordinate is out of range.
    #[must_use]
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut rows: Vec<usize> = Vec::with_capacity(sorted.len());
        let mut idcs: Vec<I> = Vec::with_capacity(sorted.len());
        let mut vals: Vec<f64> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of range");
            if rows.last() == Some(&r) && idcs.last().map(|i| i.to_usize()) == Some(c) {
                *vals.last_mut().expect("non-empty") += v;
            } else {
                rows.push(r);
                idcs.push(I::from_usize(c));
                vals.push(v);
            }
        }
        let mut ptr = vec![0u32; nrows + 1];
        for &r in &rows {
            ptr[r + 1] += 1;
        }
        for r in 0..nrows {
            ptr[r + 1] += ptr[r];
        }
        let m = Self { nrows, ncols, ptr, idcs, vals };
        debug_assert!(m.validate().is_ok());
        m
    }

    /// Internal consistency check.
    ///
    /// # Errors
    /// Returns the violated invariant.
    pub fn validate(&self) -> Result<(), FormatError> {
        Self::new(self.nrows, self.ncols, self.ptr.clone(), self.idcs.clone(), self.vals.clone())
            .map(|_| ())
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Average nonzeros per row (the x-axis of Figs. 4b/4c).
    #[must_use]
    pub fn avg_row_nnz(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// Row pointer array (`nrows + 1` entries).
    #[must_use]
    pub fn ptr(&self) -> &[u32] {
        &self.ptr
    }

    /// Column index array.
    #[must_use]
    pub fn idcs(&self) -> &[I] {
        &self.idcs
    }

    /// Value array.
    #[must_use]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// The half-open nonzero range of row `r`.
    #[must_use]
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.ptr[r] as usize..self.ptr[r + 1] as usize
    }

    /// Iterates `(col, value)` of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_range(r);
        self.idcs[range.clone()].iter().zip(&self.vals[range]).map(|(&c, &v)| (c.to_usize(), v))
    }

    /// Extracts row `r` as a standalone fiber.
    #[must_use]
    pub fn row_fiber(&self, r: usize) -> SparseFiber<I> {
        let range = self.row_range(r);
        SparseFiber::new(self.ncols, self.idcs[range.clone()].to_vec(), self.vals[range].to_vec())
            .expect("row of a valid matrix is valid")
    }

    /// Densifies (rows of columns).
    #[must_use]
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.ncols]; self.nrows];
        for (r, row_out) in out.iter_mut().enumerate() {
            for (c, v) in self.row(r) {
                row_out[c] += v;
            }
        }
        out
    }

    /// Transposes into CSC-of-the-same-matrix, i.e. returns the CSR of
    /// the transpose.
    #[must_use]
    pub fn transpose(&self) -> CsrMatrix<I> {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                triplets.push((c, r, v));
            }
        }
        CsrMatrix::from_triplets(self.ncols, self.nrows, &triplets)
    }

    /// Converts the index width.
    #[must_use]
    pub fn with_index_width<J: IndexValue>(&self) -> CsrMatrix<J> {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            ptr: self.ptr.clone(),
            idcs: self.idcs.iter().map(|&i| J::from_usize(i.to_usize())).collect(),
            vals: self.vals.clone(),
        }
    }
}

/// A CSC matrix, stored as the CSR of its transpose.
///
/// The paper's kernels handle CSC by exchanging the roles of the two
/// dense axes (§III-B); this type keeps that duality explicit.
#[derive(Clone, PartialEq, Debug)]
pub struct CscMatrix<I> {
    /// CSR representation of the transpose.
    transpose_csr: CsrMatrix<I>,
}

impl<I: IndexValue> CscMatrix<I> {
    /// Builds the CSC form of `m`.
    #[must_use]
    pub fn from_csr(m: &CsrMatrix<I>) -> Self {
        Self { transpose_csr: m.transpose() }
    }

    /// Number of rows of the represented matrix.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.transpose_csr.ncols()
    }

    /// Number of columns of the represented matrix.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.transpose_csr.nrows()
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.transpose_csr.nnz()
    }

    /// Iterates `(row, value)` of column `c`.
    pub fn col(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.transpose_csr.row(c)
    }

    /// The underlying CSR of the transpose (what the kernels consume).
    #[must_use]
    pub fn as_transposed_csr(&self) -> &CsrMatrix<I> {
        &self.transpose_csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<u32> {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
    }

    #[test]
    fn triplets_build_valid_csr() {
        let m = sample();
        assert_eq!(m.ptr(), &[0, 2, 2, 4]);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.avg_row_nnz(), 4.0 / 3.0);
        assert_eq!(
            m.to_dense(),
            vec![vec![1.0, 0.0, 2.0], vec![0.0, 0.0, 0.0], vec![3.0, 4.0, 0.0]]
        );
    }

    #[test]
    fn empty_rows_are_represented() {
        let m = sample();
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row_range(1), 2..2);
    }

    #[test]
    fn duplicate_triplets_sum() {
        let m = CsrMatrix::<u32>::from_triplets(1, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.to_dense()[0][1], 3.5);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        let tt = t.transpose();
        assert_eq!(tt.to_dense(), m.to_dense());
    }

    #[test]
    fn csc_views_columns() {
        let m = sample();
        let csc = CscMatrix::from_csr(&m);
        let col0: Vec<(usize, f64)> = csc.col(0).collect();
        assert_eq!(col0, [(0, 1.0), (2, 3.0)]);
        assert_eq!(csc.nnz(), 4);
        assert_eq!(csc.nrows(), 3);
    }

    #[test]
    fn validation_rejects_bad_ptr() {
        let err = CsrMatrix::<u32>::new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(err.is_err());
    }

    #[test]
    fn validation_rejects_out_of_range_col() {
        let err = CsrMatrix::<u16>::new(1, 2, vec![0, 1], vec![2u16], vec![1.0]);
        assert!(matches!(err, Err(FormatError::IndexOutOfRange { .. })));
    }

    #[test]
    fn row_fiber_extraction() {
        let m = sample();
        let f = m.row_fiber(2);
        assert_eq!(f.idcs(), &[0, 1]);
        assert_eq!(f.vals(), &[3.0, 4.0]);
        assert_eq!(f.dim(), 3);
    }

    #[test]
    fn width_conversion() {
        let m = sample().with_index_width::<u16>();
        assert_eq!(m.idcs(), &[0u16, 2, 0, 1]);
        assert!(m.validate().is_ok());
    }
}
