//! # issr-sparse
//!
//! Sparse tensor formats, dense operands, workload generators and
//! reference kernels for the ISSR reproduction.
//!
//! The ISSR accelerates any format whose major axis is a *sparse fiber*
//! — a value array plus an index array (§III-A): sparse vectors
//! ([`fiber::SparseFiber`]), CSR/CSC matrices ([`csr`]), and CSF tensors
//! ([`csf`]). Workloads are generated exactly as in §IV
//! (normally-distributed values, uniformly-distributed indices) by
//! [`gen`], the paper's SuiteSparse selection is mirrored by the
//! synthetic [`suite`], and [`reference`] provides the oracles the
//! simulated kernels are validated against. Real matrices can be loaded
//! via [`mm`] (Matrix Market).

#![forbid(unsafe_code)]

pub mod csf;
pub mod csr;
pub mod dense;
pub mod fiber;
pub mod gen;
pub mod index;
pub mod mm;
pub mod reference;
pub mod suite;

pub use csf::CsfTensor;
pub use csr::{CscMatrix, CsrMatrix};
pub use dense::{allclose, DenseMatrix};
pub use fiber::{FormatError, SparseFiber};
pub use index::IndexValue;
pub use suite::{suite, SuiteEntry};
