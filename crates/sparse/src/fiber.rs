//! Sparse fibers: the value/index array pair underlying every format
//! the ISSR accelerates (§III-A).

use crate::index::IndexValue;

/// A sparse fiber: nonzero values plus their positions along one axis.
///
/// This directly represents a sparse vector and is the building block of
/// CSR/CSC matrices and CSF tensors.
///
/// # Examples
/// ```
/// use issr_sparse::fiber::SparseFiber;
/// let f = SparseFiber::<u16>::new(8, vec![1, 5], vec![2.0, -1.0])?;
/// assert_eq!(f.nnz(), 2);
/// assert_eq!(f.dim(), 8);
/// # Ok::<(), issr_sparse::FormatError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct SparseFiber<I> {
    dim: usize,
    idcs: Vec<I>,
    vals: Vec<f64>,
}

/// Error constructing a sparse structure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FormatError {
    /// Index and value arrays differ in length.
    LengthMismatch { idcs: usize, vals: usize },
    /// An index is out of range for the axis dimension.
    IndexOutOfRange { index: usize, dim: usize },
    /// Row pointers are not monotonically non-decreasing.
    NonMonotonicPtr { row: usize },
    /// Row pointer bounds do not match the nonzero count.
    PtrBounds { expected: usize, got: usize },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::LengthMismatch { idcs, vals } => {
                write!(f, "index array has {idcs} entries but value array has {vals}")
            }
            FormatError::IndexOutOfRange { index, dim } => {
                write!(f, "index {index} out of range for dimension {dim}")
            }
            FormatError::NonMonotonicPtr { row } => {
                write!(f, "row pointer decreases at row {row}")
            }
            FormatError::PtrBounds { expected, got } => {
                write!(f, "row pointers end at {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for FormatError {}

impl<I: IndexValue> SparseFiber<I> {
    /// Creates a fiber over an axis of size `dim`.
    ///
    /// # Errors
    /// Returns [`FormatError`] if arrays mismatch in length or an index
    /// exceeds `dim`.
    pub fn new(dim: usize, idcs: Vec<I>, vals: Vec<f64>) -> Result<Self, FormatError> {
        if idcs.len() != vals.len() {
            return Err(FormatError::LengthMismatch { idcs: idcs.len(), vals: vals.len() });
        }
        for &i in &idcs {
            if i.to_usize() >= dim {
                return Err(FormatError::IndexOutOfRange { index: i.to_usize(), dim });
            }
        }
        Ok(Self { dim, idcs, vals })
    }

    /// Axis dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The index array.
    #[must_use]
    pub fn idcs(&self) -> &[I] {
        &self.idcs
    }

    /// The value array.
    #[must_use]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Iterates `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.idcs.iter().zip(self.vals.iter()).map(|(&i, &v)| (i.to_usize(), v))
    }

    /// Densifies into a `dim`-element vector.
    #[must_use]
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in self.iter() {
            out[i] += v;
        }
        out
    }

    /// Converts the index width.
    #[must_use]
    pub fn with_index_width<J: IndexValue>(&self) -> SparseFiber<J> {
        SparseFiber {
            dim: self.dim,
            idcs: self.idcs.iter().map(|&i| J::from_usize(i.to_usize())).collect(),
            vals: self.vals.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_fiber() {
        let f = SparseFiber::<u32>::new(10, vec![0, 3, 9], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(f.nnz(), 3);
        assert_eq!(f.to_dense(), [1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = SparseFiber::<u32>::new(4, vec![0], vec![]).unwrap_err();
        assert_eq!(err, FormatError::LengthMismatch { idcs: 1, vals: 0 });
    }

    #[test]
    fn out_of_range_rejected() {
        let err = SparseFiber::<u16>::new(4, vec![4], vec![1.0]).unwrap_err();
        assert_eq!(err, FormatError::IndexOutOfRange { index: 4, dim: 4 });
    }

    #[test]
    fn width_conversion_preserves_content() {
        let f = SparseFiber::<u32>::new(100, vec![7, 42], vec![0.5, -0.5]).unwrap();
        let g: SparseFiber<u16> = f.with_index_width();
        assert_eq!(g.idcs(), &[7u16, 42]);
        assert_eq!(g.vals(), f.vals());
        assert_eq!(g.dim(), 100);
    }
}
