//! Host-side reference kernels: the oracles every simulated kernel is
//! checked against.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::fiber::SparseFiber;
use crate::index::IndexValue;

/// Sparse-dense dot product: `Σ_j a_vals[j] · b[a_idcs[j]]` (SpVV).
///
/// # Panics
/// Panics if `b` is shorter than the fiber's dimension.
#[must_use]
pub fn spvv<I: IndexValue>(a: &SparseFiber<I>, b: &[f64]) -> f64 {
    assert!(b.len() >= a.dim(), "dense operand shorter than fiber dimension");
    a.iter().map(|(i, v)| v * b[i]).sum()
}

/// CSR matrix-vector product `y = A·x` (CsrMV).
///
/// # Panics
/// Panics if `x` is shorter than `a.ncols()`.
#[must_use]
pub fn csrmv<I: IndexValue>(a: &CsrMatrix<I>, x: &[f64]) -> Vec<f64> {
    assert!(x.len() >= a.ncols(), "dense vector shorter than matrix columns");
    (0..a.nrows()).map(|r| a.row(r).map(|(c, v)| v * x[c]).sum()).collect()
}

/// CSR matrix × dense row-major matrix, `Y = A·B` (CsrMM).
///
/// # Panics
/// Panics if `b.rows() != a.ncols()`.
#[must_use]
pub fn csrmm<I: IndexValue>(a: &CsrMatrix<I>, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(b.rows(), a.ncols(), "inner dimensions must agree");
    let mut y = DenseMatrix::zeros(a.nrows(), b.cols());
    for r in 0..a.nrows() {
        for (k, v) in a.row(r) {
            for c in 0..b.cols() {
                y.set(r, c, y.get(r, c) + v * b.get(k, c));
            }
        }
    }
    y
}

/// Sparse-sparse dot product over two sparse fibers (SpVV∩): the sum of
/// `a_vals[i] · b_vals[j]` over all index matches `a_idcs[i] == b_idcs[j]`.
#[must_use]
pub fn spvv_ss<I: IndexValue>(a: &SparseFiber<I>, b: &SparseFiber<I>) -> f64 {
    let b_vals: std::collections::HashMap<usize, f64> = b.iter().collect();
    a.iter().filter_map(|(i, v)| b_vals.get(&i).map(|bv| v * bv)).sum()
}

/// Sparse matrix × sparse vector, `y = A·x` with sparse `x` (SpMSpV).
/// Each output element is the sparse-sparse dot of one matrix row with
/// `x`; the result is returned densely (`nrows` elements).
///
/// # Panics
/// Panics if `x.dim() < a.ncols()`.
#[must_use]
pub fn spmspv<I: IndexValue>(a: &CsrMatrix<I>, x: &SparseFiber<I>) -> Vec<f64> {
    assert!(x.dim() >= a.ncols(), "sparse vector shorter than matrix columns");
    let x_vals: std::collections::HashMap<usize, f64> = x.iter().collect();
    (0..a.nrows())
        .map(|r| a.row(r).filter_map(|(c, v)| x_vals.get(&c).map(|xv| v * xv)).sum())
        .collect()
}

/// Row pointers of the sparse product `C = A·B` (the *symbolic* phase
/// of SpGEMM): `ptr[i+1] - ptr[i]` is the number of distinct columns
/// reached by row `i`'s Gustavson expansion. Kernel harnesses use this
/// to size (two-pass allocate) the output arrays before simulation.
///
/// # Panics
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn spgemm_ptr<I: IndexValue>(a: &CsrMatrix<I>, b: &CsrMatrix<I>) -> Vec<u32> {
    assert_eq!(b.nrows(), a.ncols(), "inner dimensions must agree");
    let mut ptr = Vec::with_capacity(a.nrows() + 1);
    ptr.push(0u32);
    let mut cols = std::collections::BTreeSet::new();
    for r in 0..a.nrows() {
        cols.clear();
        for (k, _) in a.row(r) {
            for (c, _) in b.row(k) {
                cols.insert(c);
            }
        }
        ptr.push(ptr[r] + cols.len() as u32);
    }
    ptr
}

/// Sparse matrix × sparse matrix, `C = A·B`, row-wise Gustavson
/// (SpGEMM): `C[i,:] = Σ_k A[i,k] · B[k,:]`. The output is a valid CSR
/// matrix with sorted, duplicate-free column indices per row; exact
/// zeros produced by cancellation are kept (the structure is the union
/// of the expanded rows, as the hardware builder produces).
///
/// # Panics
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn spgemm<I: IndexValue>(a: &CsrMatrix<I>, b: &CsrMatrix<I>) -> CsrMatrix<I> {
    assert_eq!(b.nrows(), a.ncols(), "inner dimensions must agree");
    let mut ptr = Vec::with_capacity(a.nrows() + 1);
    ptr.push(0u32);
    let mut idcs = Vec::new();
    let mut vals = Vec::new();
    let mut acc: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    for r in 0..a.nrows() {
        acc.clear();
        for (k, av) in a.row(r) {
            for (c, bv) in b.row(k) {
                *acc.entry(c).or_insert(0.0) += av * bv;
            }
        }
        for (&c, &v) in &acc {
            idcs.push(I::from_usize(c));
            vals.push(v);
        }
        ptr.push(idcs.len() as u32);
    }
    CsrMatrix::new(a.nrows(), b.ncols(), ptr, idcs, vals).expect("reference SpGEMM output is valid")
}

/// Gather: `out[j] = data[idcs[j]]`.
#[must_use]
pub fn gather<I: IndexValue>(data: &[f64], idcs: &[I]) -> Vec<f64> {
    idcs.iter().map(|&i| data[i.to_usize()]).collect()
}

/// Scatter: `out[idcs[j]] = vals[j]` over a zeroed output of length
/// `dim` (sparse vector densification).
///
/// # Panics
/// Panics if lengths mismatch.
#[must_use]
pub fn scatter<I: IndexValue>(dim: usize, idcs: &[I], vals: &[f64]) -> Vec<f64> {
    assert_eq!(idcs.len(), vals.len(), "index/value length mismatch");
    let mut out = vec![0.0; dim];
    for (&i, &v) in idcs.iter().zip(vals) {
        out[i.to_usize()] = v;
    }
    out
}

/// Codebook decode: `out[j] = codebook[codes[j]]` (§III-C).
#[must_use]
pub fn codebook_decode<I: IndexValue>(codebook: &[f64], codes: &[I]) -> Vec<f64> {
    gather(codebook, codes)
}

/// Dot product of a codebook-compressed sparse vector with a dense one:
/// values come from the codebook, positions from the sparse indices.
#[must_use]
pub fn codebook_spvv<I: IndexValue>(
    codebook: &[f64],
    codes: &[I],
    idcs: &[I],
    dense: &[f64],
) -> f64 {
    codes.iter().zip(idcs).map(|(&c, &i)| codebook[c.to_usize()] * dense[i.to_usize()]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn spvv_small() {
        let a = SparseFiber::<u16>::new(4, vec![1, 3], vec![2.0, -1.0]).unwrap();
        let b = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(spvv(&a, &b), 2.0 * 20.0 - 40.0);
    }

    #[test]
    fn spvv_ss_counts_only_matches() {
        let a = SparseFiber::<u16>::new(10, vec![1, 3, 7], vec![2.0, 4.0, 8.0]).unwrap();
        let b = SparseFiber::<u16>::new(10, vec![0, 3, 7, 9], vec![1.0, 10.0, 100.0, 5.0]).unwrap();
        assert_eq!(spvv_ss(&a, &b), 4.0 * 10.0 + 8.0 * 100.0);
        let empty = SparseFiber::<u16>::new(10, vec![], vec![]).unwrap();
        assert_eq!(spvv_ss(&a, &empty), 0.0);
        assert_eq!(spvv_ss(&empty, &b), 0.0);
    }

    #[test]
    fn spmspv_matches_densified_csrmv() {
        let mut rng = gen::rng(31);
        let m = gen::csr_uniform::<u16>(&mut rng, 20, 40, 120);
        let x = gen::sparse_vector::<u16>(&mut rng, 40, 11);
        let y = spmspv(&m, &x);
        let dense = csrmv(&m, &x.to_dense());
        for (a, b) in y.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn spgemm_matches_dense_matmul() {
        let mut rng = gen::rng(37);
        let a = gen::csr_uniform::<u16>(&mut rng, 12, 20, 60);
        let b = gen::csr_uniform::<u16>(&mut rng, 20, 16, 80);
        let c = spgemm(&a, &b);
        assert_eq!(c.nrows(), 12);
        assert_eq!(c.ncols(), 16);
        let (da, db, dc) = (a.to_dense(), b.to_dense(), c.to_dense());
        for r in 0..12 {
            for j in 0..16 {
                let expect: f64 = (0..20).map(|k| da[r][k] * db[k][j]).sum();
                assert!((dc[r][j] - expect).abs() < 1e-9, "C[{r}][{j}]");
            }
        }
        assert_eq!(spgemm_ptr(&a, &b), c.ptr());
    }

    #[test]
    fn spgemm_handles_empty_operands() {
        let a = CsrMatrix::<u16>::from_triplets(3, 4, &[(1, 2, 5.0)]);
        let empty = CsrMatrix::<u16>::from_triplets(4, 5, &[]);
        let c = spgemm(&a, &empty);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.ptr(), &[0, 0, 0, 0]);
        let b = CsrMatrix::<u16>::from_triplets(4, 5, &[(2, 0, 1.0), (2, 4, -1.0)]);
        let c = spgemm(&a, &b);
        assert_eq!(c.ptr(), &[0, 0, 2, 2]);
        assert_eq!(c.row(1).collect::<Vec<_>>(), vec![(0, 5.0), (4, -5.0)]);
    }

    #[test]
    fn csrmv_matches_dense_computation() {
        let mut rng = gen::rng(17);
        let m = gen::csr_uniform::<u32>(&mut rng, 30, 40, 200);
        let x = gen::dense_vector(&mut rng, 40);
        let y = csrmv(&m, &x);
        let dense = m.to_dense();
        for (r, yr) in y.iter().enumerate() {
            let expect: f64 = dense[r].iter().zip(&x).map(|(a, b)| a * b).sum();
            assert!((yr - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn csrmm_matches_column_wise_csrmv() {
        let mut rng = gen::rng(23);
        let a = gen::csr_uniform::<u16>(&mut rng, 10, 12, 40);
        let mut b = DenseMatrix::zeros(12, 3);
        for r in 0..12 {
            for c in 0..3 {
                b.set(r, c, gen::dense_vector(&mut rng, 1)[0]);
            }
        }
        let y = csrmm(&a, &b);
        for c in 0..3 {
            let yc = csrmv(&a, &b.col(c));
            for (r, &ycr) in yc.iter().enumerate() {
                assert!((y.get(r, c) - ycr).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gather_scatter_inverse() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let idcs: [u16; 3] = [4, 0, 2];
        let g = gather(&data, &idcs);
        assert_eq!(g, [5.0, 1.0, 3.0]);
        let s = scatter(5, &idcs, &g);
        assert_eq!(s, [1.0, 0.0, 3.0, 0.0, 5.0]);
    }

    #[test]
    fn codebook_paths() {
        let book = [0.5, -1.5, 2.0];
        let codes: [u16; 4] = [2, 0, 1, 2];
        assert_eq!(codebook_decode(&book, &codes), [2.0, 0.5, -1.5, 2.0]);
        let idcs: [u16; 4] = [0, 1, 2, 3];
        let dense = [1.0, 10.0, 100.0, 1000.0];
        let expect = 2.0 * 1.0 + 0.5 * 10.0 + -1.5 * 100.0 + 2.0 * 1000.0;
        assert_eq!(codebook_spvv(&book, &codes, &idcs, &dense), expect);
    }
}
