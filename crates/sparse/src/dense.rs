//! Dense vectors and strided row-major matrices.
//!
//! The ISSR's index shifter requires a power-of-two stride on the
//! indirected dense axis (§III-B); [`DenseMatrix::with_pow2_stride`]
//! pads the row stride accordingly, exactly as the paper suggests tiling
//! matrices into the TCDM.

/// A dense row-major matrix with an explicit row stride (in elements).
#[derive(Clone, PartialEq, Debug)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    stride: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix with `stride == cols`.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, stride: cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a zero matrix whose row stride is padded to the next
    /// power of two, as required for ISSR indirection into rows.
    #[must_use]
    pub fn with_pow2_stride(rows: usize, cols: usize) -> Self {
        let stride = cols.next_power_of_two().max(1);
        Self { rows, cols, stride, data: vec![0.0; rows * stride] }
    }

    /// Builds from row-major data with `stride == cols`.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, stride: cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of (logical) columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row stride in elements (≥ `cols`).
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Raw storage including stride padding.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Element accessor.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.stride + c]
    }

    /// Element mutator.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.stride + c] = v;
    }

    /// One row (logical columns only).
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.stride..r * self.stride + self.cols]
    }

    /// A column, gathered.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let mut worst = 0.0f64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                worst = worst.max((self.get(r, c) - other.get(r, c)).abs());
            }
        }
        worst
    }
}

/// Relative comparison of two f64 slices: `|a-b| <= atol + rtol·|b|`.
///
/// Accumulation order differs between the simulated kernels (staggered
/// accumulators, tree reductions) and the reference, so exact equality
/// is not expected.
#[must_use]
pub fn allclose(a: &[f64], b: &[f64], rtol: f64, atol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| (x - y).abs() <= atol + rtol * y.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_stride_padding() {
        let m = DenseMatrix::with_pow2_stride(3, 5);
        assert_eq!(m.stride(), 8);
        assert_eq!(m.data().len(), 24);
        assert_eq!(m.cols(), 5);
    }

    #[test]
    fn get_set_respects_stride() {
        let mut m = DenseMatrix::with_pow2_stride(2, 3);
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        // Row 1 starts at stride 4: element (1, 2) lives at flat index 6.
        assert_eq!(m.data()[4 + 2], 7.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
    }

    #[test]
    fn from_rows_and_col() {
        let m = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.col(1), [2.0, 4.0]);
    }

    #[test]
    fn allclose_tolerances() {
        assert!(allclose(&[1.0, 2.0], &[1.0 + 1e-13, 2.0], 1e-12, 0.0));
        assert!(!allclose(&[1.0], &[1.1], 1e-12, 0.0));
        assert!(!allclose(&[1.0], &[1.0, 2.0], 1e-12, 1e-12));
        assert!(allclose(&[0.0], &[1e-15], 0.0, 1e-12));
    }

    #[test]
    fn max_abs_diff_finds_worst() {
        let a = DenseMatrix::from_rows(1, 3, vec![1.0, 2.0, 3.0]);
        let b = DenseMatrix::from_rows(1, 3, vec![1.0, 2.5, 3.1]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-15);
    }
}
