//! Property tests on the SpGEMM oracle: for random CSR operands the
//! product must agree with the dense matrix product, produce sorted
//! duplicate-free rows, handle empty rows, and be independent of the
//! index width.

use issr_sparse::csr::CsrMatrix;
use issr_sparse::reference::{csrmv, spgemm, spgemm_ptr};
use issr_sparse::{gen, index::IndexValue};
use proptest::prelude::*;

/// Generates a random CSR matrix shape: `(nrows, ncols, nnz)` triplets
/// drawn from the strategy parameters are materialized by the seeded
/// generator so each case is reproducible.
fn random_pair(
    seed: u64,
    nrows: usize,
    inner: usize,
    ncols: usize,
    nnz_a: usize,
    nnz_b: usize,
) -> (CsrMatrix<u32>, CsrMatrix<u32>) {
    let mut rng = gen::rng(seed);
    let a = gen::csr_uniform::<u32>(&mut rng, nrows, inner, nnz_a.min(nrows * inner));
    let b = gen::csr_uniform::<u32>(&mut rng, inner, ncols, nnz_b.min(inner * ncols));
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `spgemm(A, B)` densified equals the dense matrix product.
    #[test]
    fn spgemm_matches_dense_matmul(
        seed in 0u64..1_000_000,
        nrows in 1usize..24,
        inner in 1usize..24,
        ncols in 1usize..24,
        nnz_a in 0usize..120,
        nnz_b in 0usize..120,
    ) {
        let (a, b) = random_pair(seed, nrows, inner, ncols, nnz_a, nnz_b);
        let c = spgemm(&a, &b);
        prop_assert!(c.validate().is_ok());
        let (da, db, dc) = (a.to_dense(), b.to_dense(), c.to_dense());
        for r in 0..nrows {
            for j in 0..ncols {
                let expect: f64 = (0..inner).map(|k| da[r][k] * db[k][j]).sum();
                prop_assert!((dc[r][j] - expect).abs() <= 1e-9 * expect.abs().max(1.0));
            }
        }
    }

    /// Row structure: sorted, duplicate-free column indices, row
    /// pointers matching the symbolic phase, and empty A rows producing
    /// empty C rows.
    #[test]
    fn spgemm_rows_sorted_and_duplicate_free(
        seed in 0u64..1_000_000,
        nrows in 1usize..20,
        inner in 1usize..20,
        ncols in 1usize..20,
        nnz_a in 0usize..80,
        nnz_b in 0usize..80,
    ) {
        let (a, b) = random_pair(seed, nrows, inner, ncols, nnz_a, nnz_b);
        let c = spgemm(&a, &b);
        prop_assert_eq!(spgemm_ptr(&a, &b), c.ptr().to_vec());
        for r in 0..nrows {
            let cols: Vec<usize> = c.row(r).map(|(j, _)| j).collect();
            for w in cols.windows(2) {
                prop_assert!(w[0] < w[1], "row {} not strictly sorted", r);
            }
            if a.row(r).count() == 0 {
                prop_assert_eq!(cols.len(), 0, "empty A row {} must stay empty", r);
            }
        }
    }

    /// The product is index-width independent: computing in 32-bit and
    /// narrowing equals computing in 16-bit directly.
    #[test]
    fn spgemm_index_width_independent(
        seed in 0u64..1_000_000,
        n in 1usize..16,
        nnz in 0usize..60,
    ) {
        let (a32, b32) = random_pair(seed, n, n, n, nnz, nnz);
        let c32 = spgemm(&a32, &b32);
        let c16 = spgemm(&a32.with_index_width::<u16>(), &b32.with_index_width::<u16>());
        prop_assert_eq!(c32.ptr().to_vec(), c16.ptr().to_vec());
        let narrow: Vec<u16> = c32.idcs().iter().map(|&i| u16::from_usize(i.to_usize())).collect();
        prop_assert_eq!(narrow, c16.idcs().to_vec());
        prop_assert_eq!(c32.vals().to_vec(), c16.vals().to_vec());
    }

    /// SpGEMM against a one-column B degenerates to CsrMV on the
    /// densified column.
    #[test]
    fn spgemm_single_column_matches_csrmv(
        seed in 0u64..1_000_000,
        nrows in 1usize..20,
        inner in 1usize..20,
        nnz_a in 0usize..60,
        x_nnz in 0usize..20,
    ) {
        let mut rng = gen::rng(seed);
        let a = gen::csr_uniform::<u32>(&mut rng, nrows, inner, nnz_a.min(nrows * inner));
        let x = gen::sparse_vector::<u32>(&mut rng, inner, x_nnz.min(inner));
        let b = CsrMatrix::<u32>::from_triplets(
            inner,
            1,
            &x.iter().map(|(i, v)| (i, 0, v)).collect::<Vec<_>>(),
        );
        let c = spgemm(&a, &b);
        let y = csrmv(&a, &x.to_dense());
        let dense_c = c.to_dense();
        for (r, &yr) in y.iter().enumerate() {
            prop_assert!((dense_c[r][0] - yr).abs() <= 1e-9 * yr.abs().max(1.0));
        }
    }
}
