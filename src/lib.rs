//! # issr
//!
//! Facade crate for the ISSR reproduction (DATE 2021,
//! arXiv:2011.08070): re-exports every workspace crate under one roof
//! for the examples and integration tests.
//!
//! Start with [`kernels`] (the paper's SpVV/CsrMV/CsrMM kernels and the
//! harnesses that run them on the simulated Snitch core complex and
//! cluster), [`sparse`] (formats and workload generators), and the
//! `issr-bench` binaries that regenerate the paper's figures.
//!
//! Beyond the paper, the streamer carries the SSSR-style sparse-sparse
//! **index joiner** (arXiv:2305.05559): see [`core::joiner`] and the
//! SpVV∩ / SpMSpV kernels in `kernels::spmspv` (`examples/spmspv.rs`
//! walks through it; `issr-bench --bin joiner` sweeps it) — and its
//! write-side counterpart, the **SpAcc** sparse accumulator
//! ([`core::spacc`]), which turns a lane's write stream into compressed
//! CSR rows and powers row-wise SpGEMM in `kernels::spgemm` plus the
//! cluster versions in `kernels::cluster_spmspv` /
//! `kernels::cluster_spgemm` (`examples/spgemm.rs`; `issr-bench --bin
//! spgemm`).
//!
//! # Examples
//! ```
//! use issr::kernels::spvv::run_spvv;
//! use issr::kernels::variant::Variant;
//! use issr::sparse::{gen, reference};
//!
//! let mut rng = gen::rng(7);
//! let a = gen::sparse_vector::<u16>(&mut rng, 256, 64);
//! let b = gen::dense_vector(&mut rng, 256);
//! let run = run_spvv(Variant::Issr, &a, &b).expect("kernel finishes");
//! let expect = reference::spvv(&a, &b);
//! assert!((run.result - expect).abs() < 1e-9 * expect.abs().max(1.0));
//! ```

#![forbid(unsafe_code)]

pub use issr_cluster as cluster;
pub use issr_compare as compare;
pub use issr_core as core;
pub use issr_isa as isa;
pub use issr_kernels as kernels;
pub use issr_lint as lint;
pub use issr_mem as mem;
pub use issr_model as model;
pub use issr_snitch as snitch;
pub use issr_sparse as sparse;
pub use issr_system as system;
