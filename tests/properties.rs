//! Property-based integration tests: random workloads through the full
//! simulated stack must match the host references.

use issr::kernels::csrmv::run_csrmv;
use issr::kernels::spvv::run_spvv;
use issr::kernels::streaming::{run_gather, run_scatter};
use issr::kernels::variant::Variant;
use issr::sparse::csr::CsrMatrix;
use issr::sparse::dense::allclose;
use issr::sparse::fiber::SparseFiber;
use issr::sparse::reference;
use proptest::prelude::*;

fn fiber_strategy(dim: usize, max_nnz: usize) -> impl Strategy<Value = SparseFiber<u16>> {
    proptest::collection::btree_set(0..dim, 0..=max_nnz).prop_flat_map(move |idcs| {
        let idcs: Vec<u16> = idcs.into_iter().map(|i| i as u16).collect();
        let n = idcs.len();
        (Just(idcs), proptest::collection::vec(-100.0f64..100.0, n))
            .prop_map(move |(idcs, vals)| SparseFiber::new(dim, idcs, vals).expect("valid"))
    })
}

fn csr_strategy() -> impl Strategy<Value = CsrMatrix<u16>> {
    proptest::collection::vec((0usize..24, 0usize..48, -10.0f64..10.0), 0..200)
        .prop_map(|triplets| CsrMatrix::from_triplets(24, 48, &triplets))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn issr_spvv_matches_reference(
        fiber in fiber_strategy(256, 60),
        dense in proptest::collection::vec(-10.0f64..10.0, 256),
    ) {
        let run = run_spvv(Variant::Issr, &fiber, &dense).expect("finishes");
        let expect = reference::spvv(&fiber, &dense);
        prop_assert!((run.result - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }

    #[test]
    fn issr_csrmv_matches_reference(m in csr_strategy(), seed in 0u64..1000) {
        let mut rng = issr::sparse::gen::rng(seed);
        let x = issr::sparse::gen::dense_vector(&mut rng, m.ncols());
        let run = run_csrmv(Variant::Issr, &m, &x).expect("finishes");
        prop_assert!(allclose(&run.y, &reference::csrmv(&m, &x), 1e-10, 1e-10));
    }

    #[test]
    fn issr_spvv_ss_matches_reference(
        a in fiber_strategy(256, 60),
        b in fiber_strategy(256, 60),
    ) {
        let run = issr::kernels::spmspv::run_spvv_ss(Variant::Issr, &a, &b)
            .expect("finishes");
        let expect = reference::spvv_ss(&a, &b);
        prop_assert!((run.result - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }

    #[test]
    fn issr_spmspv_matches_reference(m in csr_strategy(), x in fiber_strategy(48, 30)) {
        let run = issr::kernels::spmspv::run_spmspv(Variant::Issr, &m, &x)
            .expect("finishes");
        prop_assert!(allclose(&run.y, &reference::spmspv(&m, &x), 1e-10, 1e-10));
    }

    #[test]
    fn scatter_then_gather_round_trips(fiber in fiber_strategy(128, 40)) {
        let scattered = run_scatter(128, fiber.idcs(), fiber.vals()).expect("finishes");
        prop_assert_eq!(
            &scattered.out,
            &reference::scatter(128, fiber.idcs(), fiber.vals())
        );
        let gathered = run_gather(&scattered.out, fiber.idcs()).expect("finishes");
        prop_assert_eq!(&gathered.out[..], fiber.vals());
    }
}
