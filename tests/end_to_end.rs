//! Cross-crate integration: every kernel variant against the host
//! reference, architectural utilization limits, and determinism.

use issr::kernels::cluster_csrmv::run_cluster_csrmv;
use issr::kernels::csrmv::run_csrmv;
use issr::kernels::spvv::run_spvv;
use issr::kernels::variant::Variant;
use issr::sparse::dense::allclose;
use issr::sparse::{gen, reference};

#[test]
fn all_spvv_variants_and_widths_match_reference() {
    let mut rng = gen::rng(1000);
    let a32 = gen::sparse_vector::<u32>(&mut rng, 1024, 300);
    let a16 = a32.with_index_width::<u16>();
    let b = gen::dense_vector(&mut rng, 1024);
    let expect = reference::spvv(&a32, &b);
    for variant in Variant::ALL {
        let wide = run_spvv(variant, &a32, &b).unwrap().result;
        let narrow = run_spvv(variant, &a16, &b).unwrap().result;
        let tol = 1e-10 * expect.abs().max(1.0);
        assert!((wide - expect).abs() < tol, "{variant} u32");
        assert!((narrow - expect).abs() < tol, "{variant} u16");
    }
}

#[test]
fn all_csrmv_variants_match_reference_on_suite_matrix() {
    let entry = issr::sparse::suite::by_name("ragusa18").unwrap();
    let m = entry.build::<u16>();
    let mut rng = gen::rng(1001);
    let x = gen::dense_vector(&mut rng, m.ncols());
    let expect = reference::csrmv(&m, &x);
    for variant in Variant::ALL {
        let run = run_csrmv(variant, &m, &x).unwrap();
        assert!(allclose(&run.y, &expect, 1e-12, 1e-12), "{variant}");
    }
}

/// The paper's architectural ceilings are never exceeded.
#[test]
fn utilization_never_exceeds_architectural_limits() {
    let mut rng = gen::rng(1002);
    let a32 = gen::sparse_vector::<u32>(&mut rng, 2048, 1024);
    let a16 = a32.with_index_width::<u16>();
    let b = gen::dense_vector(&mut rng, 2048);
    let eps = 1e-9;
    let base = run_spvv(Variant::Base, &a32, &b).unwrap();
    assert!(base.summary.metrics.fpu_utilization() <= 1.0 / 9.0 + eps);
    let ssr = run_spvv(Variant::Ssr, &a32, &b).unwrap();
    assert!(ssr.summary.metrics.fpu_utilization() <= 1.0 / 7.0 + eps);
    let issr32 = run_spvv(Variant::Issr, &a32, &b).unwrap();
    assert!(issr32.summary.metrics.fpu_utilization() <= 2.0 / 3.0 + eps);
    let issr16 = run_spvv(Variant::Issr, &a16, &b).unwrap();
    assert!(issr16.summary.metrics.fpu_utilization() <= 0.8 + eps);
}

#[test]
fn cluster_and_single_cc_agree_on_results() {
    let mut rng = gen::rng(1003);
    let m = gen::csr_uniform::<u16>(&mut rng, 96, 160, 1200);
    let x = gen::dense_vector(&mut rng, 160);
    let single = run_csrmv(Variant::Issr, &m, &x).unwrap();
    let cluster = run_cluster_csrmv(Variant::Issr, &m, &x).unwrap();
    assert!(allclose(&single.y, &cluster.y, 1e-12, 1e-12));
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let mut rng = gen::rng(1004);
        let m = gen::csr_uniform::<u16>(&mut rng, 64, 128, 512);
        let x = gen::dense_vector(&mut rng, 128);
        run_cluster_csrmv(Variant::Issr, &m, &x).unwrap().summary.cycles
    };
    assert_eq!(run(), run());
}
