//! The binary path end to end: a kernel assembled to machine words,
//! decoded back, and executed must behave identically to the typed
//! original — the property a real binary toolchain would rely on.

use issr::isa::asm::Program;
use issr::isa::{decode_all, encode_all};
use issr::kernels::layout::{alloc_result, place_f64s, place_fiber, Arena};
use issr::kernels::spmspv::{build_spvv_ss, SpvvSsAddrs};
use issr::kernels::spvv::{build_spvv, SpvvAddrs};
use issr::kernels::variant::Variant;
use issr::snitch::cc::{SingleCcSim, SINGLE_CC_ARENA};
use issr::sparse::gen;

#[test]
fn encoded_kernel_executes_identically() {
    let mut rng = gen::rng(7777);
    let a = gen::sparse_vector::<u16>(&mut rng, 512, 100);
    let b = gen::dense_vector(&mut rng, 512);

    // Stage the workload once.
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut staged = SingleCcSim::new(Program::default());
    let fiber = place_fiber(&mut arena, staged.mem.array_mut(), &a);
    let b_addr = place_f64s(&mut arena, staged.mem.array_mut(), &b);
    let out = alloc_result(&mut arena, 1);
    let addrs = SpvvAddrs { a: fiber, b: b_addr, out };

    // Typed program.
    let typed = build_spvv::<u16>(Variant::Issr, addrs);
    // Through the binary encoding and back.
    let words = encode_all(typed.instrs());
    let decoded = decode_all(&words).expect("every word decodes");
    assert_eq!(decoded, typed.instrs(), "decode is the inverse of encode");

    // Execute both; cycle counts and results must match exactly.
    let run = |instrs: Vec<issr::isa::Instr>| {
        let mut asm = issr::isa::Assembler::new();
        for i in instrs {
            asm.push(i);
        }
        let mut sim = SingleCcSim::new(asm.finish().expect("no labels left"));
        sim.mem = {
            let mut staged2 = SingleCcSim::new(Program::default());
            let mut arena2 = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
            let f2 = place_fiber(&mut arena2, staged2.mem.array_mut(), &a);
            let b2 = place_f64s(&mut arena2, staged2.mem.array_mut(), &b);
            let o2 = alloc_result(&mut arena2, 1);
            assert_eq!((f2.vals, b2, o2), (addrs.a.vals, addrs.b, addrs.out));
            staged2.mem
        };
        let summary = sim.run(100_000).expect("finishes");
        (summary.cycles, sim.mem.array().load_f64(out))
    };
    let (c1, r1) = run(typed.instrs().to_vec());
    let (c2, r2) = run(decoded);
    assert_eq!(c1, c2, "cycle-exact equivalence");
    assert_eq!(r1.to_bits(), r2.to_bits(), "bit-exact result");
}

/// The joiner configuration (JOIN_* scfgwi writes, launch pointer)
/// survives the binary encoding: the sparse-sparse kernel decoded from
/// machine words runs cycle- and bit-identically.
#[test]
fn encoded_joiner_kernel_executes_identically() {
    let mut rng = gen::rng(8888);
    let (a, b) = gen::overlapping_pair::<u16>(&mut rng, 1024, 96, 96, 0.5);

    let stage = || {
        let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
        let mut staged = SingleCcSim::with_joiner(Program::default());
        let a_addrs = place_fiber(&mut arena, staged.mem.array_mut(), &a);
        let b_addrs = place_fiber(&mut arena, staged.mem.array_mut(), &b);
        let out = alloc_result(&mut arena, 1);
        (staged, SpvvSsAddrs { a: a_addrs, b: b_addrs, out })
    };
    let (_, addrs) = stage();
    let typed = build_spvv_ss::<u16>(Variant::Issr, addrs);
    let words = encode_all(typed.instrs());
    let decoded = decode_all(&words).expect("every word decodes");
    assert_eq!(decoded, typed.instrs(), "decode is the inverse of encode");

    let run = |instrs: Vec<issr::isa::Instr>| {
        let mut asm = issr::isa::Assembler::new();
        for i in instrs {
            asm.push(i);
        }
        let mut sim = SingleCcSim::with_joiner(asm.finish().expect("no labels left"));
        sim.mem = stage().0.mem;
        let summary = sim.run(100_000).expect("finishes");
        (summary.cycles, sim.mem.array().load_f64(addrs.out))
    };
    let (c1, r1) = run(typed.instrs().to_vec());
    let (c2, r2) = run(decoded);
    assert_eq!(c1, c2, "cycle-exact equivalence");
    assert_eq!(r1.to_bits(), r2.to_bits(), "bit-exact result");
    let expect = issr::sparse::reference::spvv_ss(&a, &b);
    assert!((r1 - expect).abs() < 1e-9 * expect.abs().max(1.0));
}
