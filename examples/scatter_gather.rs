//! Scatter-gather streaming (§III-C): densify a sparse vector with an
//! ISSR write stream, then gather it back and check the round trip.
//!
//! ```sh
//! cargo run --release --example scatter_gather
//! ```

use issr::kernels::streaming::{run_gather, run_scatter};
use issr::sparse::{gen, reference};

fn main() {
    let mut rng = gen::rng(4);
    let dim = 4096;
    let nnz = 1000;
    let fiber = gen::sparse_vector::<u16>(&mut rng, dim, nnz);

    // Densification: out[idcs[j]] = vals[j] via the indirection write
    // stream.
    let scattered = run_scatter(dim, fiber.idcs(), fiber.vals()).expect("scatter finishes");
    assert_eq!(scattered.out, reference::scatter(dim, fiber.idcs(), fiber.vals()));
    println!(
        "scattered {nnz} values into a {dim}-element buffer in {} cycles",
        scattered.summary.metrics.roi.cycles
    );

    // Gather them back: the round trip restores the fiber values.
    let gathered = run_gather(&scattered.out, fiber.idcs()).expect("gather finishes");
    assert_eq!(gathered.out, fiber.vals());
    println!(
        "gathered them back in {} cycles ({:.2} elements/cycle) — scatter/gather round trip OK",
        gathered.summary.metrics.roi.cycles,
        nnz as f64 / gathered.summary.metrics.roi.cycles as f64
    );
}
