//! CSF tensor-times-vector (§III-A): the ISSR accelerates any
//! fiber-based format — here an order-3 CSF tensor is contracted with a
//! vector by composing the CsrMV kernel (over the leaf fibers) with an
//! ISSR scatter of the per-fiber results.
//!
//! ```sh
//! cargo run --release --example csf_ttv
//! ```

use issr::kernels::csf_ttv::run_csf_ttv;
use issr::kernels::variant::Variant;
use issr::sparse::csf::CsfTensor;
use issr::sparse::gen;
use rand::Rng;

fn main() {
    let dims = [16, 16, 512];
    let nnz = 6000;
    let mut rng = gen::rng(6);
    let entries: Vec<([usize; 3], f64)> = (0..nnz)
        .map(|_| {
            (
                [rng.gen_range(0..dims[0]), rng.gen_range(0..dims[1]), rng.gen_range(0..dims[2])],
                rng.gen_range(-1.0..1.0),
            )
        })
        .collect();
    let t = CsfTensor::<u16>::from_coords(dims, &entries);
    let x = gen::dense_vector(&mut rng, dims[2]);
    println!(
        "TTV: {}x{}x{} CSF tensor, {} nonzeros in {} slices\n",
        dims[0],
        dims[1],
        dims[2],
        t.nnz(),
        t.n_slices(),
    );
    let expect = t.ttv(&x);
    for variant in [Variant::Base, Variant::Issr] {
        let run = run_csf_ttv(variant, &t, &x).expect("ttv finishes");
        let mut worst = 0.0f64;
        for (run_row, exp_row) in run.y.iter().zip(&expect) {
            for (got, want) in run_row.iter().zip(exp_row) {
                worst = worst.max((got - want).abs());
            }
        }
        assert!(worst < 1e-9, "max abs error {worst}");
        println!(
            "{variant:>5}: CsrMV pass {:7} cycles + scatter pass {:5} cycles (result max-err {worst:.1e})",
            run.mv_cycles, run.scatter_cycles,
        );
    }
}
