//! Cluster SpMV: run the eight-core Snitch cluster with DMA
//! double-buffering on a suite matrix, in BASE and ISSR variants, and
//! report speedup, utilization, and modelled energy (Fig. 4c/4d flow).
//!
//! ```sh
//! cargo run --release --example spmv_cluster [matrix-name]
//! ```

use issr::kernels::cluster_csrmv::run_cluster_csrmv;
use issr::kernels::variant::Variant;
use issr::model::power::PowerModel;
use issr::sparse::dense::allclose;
use issr::sparse::{gen, reference, suite};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "g7".to_owned());
    let entry = suite::by_name(&name).expect("unknown suite matrix (try g7, g11, plat1919)");
    let m = entry.build::<u16>();
    let mut rng = gen::rng(2);
    let x = gen::dense_vector(&mut rng, m.ncols());
    println!(
        "cluster CsrMV on `{name}`: {}x{}, {} nonzeros ({:.1} nnz/row)\n",
        m.nrows(),
        m.ncols(),
        m.nnz(),
        m.avg_row_nnz()
    );
    let expect = reference::csrmv(&m, &x);
    let model = PowerModel::default();
    let mut cycles = Vec::new();
    for variant in [Variant::Base, Variant::Issr] {
        let run = run_cluster_csrmv(variant, &m, &x).expect("cluster run finishes");
        assert!(allclose(&run.y, &expect, 1e-12, 1e-12), "result mismatch");
        let e = model.evaluate(&run.summary);
        println!(
            "{variant:>5}: {:8} cycles | peak worker util {:.3} | {:5.0} mW | {:5.0} pJ/fmadd | {} bank conflicts",
            run.summary.cycles,
            run.summary.peak_worker_utilization(),
            e.avg_power_mw,
            e.pj_per_fmadd,
            run.summary.tcdm_stats.conflicts,
        );
        cycles.push(run.summary.cycles as f64);
    }
    println!("\nspeedup ISSR-16 over BASE: {:.2}x", cycles[0] / cycles[1]);
}
