//! Sparse-output streaming end to end: the SpAcc write-stream sparse
//! accumulator (`issr-core::spacc`) union-merges each Gustavson row
//! expansion on the fly and drains compressed CSR rows to memory, so
//! row-wise SpGEMM collapses to one streamed `fmul` per partial product
//! — against the ~14-instruction software merge step of BASE. The same
//! kernel then row-stripes across the eight-worker cluster.
//!
//! ```sh
//! cargo run --release --example spgemm
//! ```

use issr::kernels::cluster_spgemm::run_cluster_spgemm;
use issr::kernels::spgemm::run_spgemm;
use issr::kernels::variant::Variant;
use issr::sparse::{gen, reference};

fn main() {
    // C = A·B: 32x128 times 128x384, a few nonzeros per row each.
    let (nrows, inner, ncols, a_nnz, b_nnz) = (32, 128, 384, 4, 24);
    let mut rng = gen::rng(3);
    let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, nrows, inner, a_nnz);
    let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, inner, ncols, b_nnz);
    let expect = reference::spgemm(&a, &b).with_index_width::<u32>();

    println!(
        "SpGEMM: {nrows}x{inner} ({a_nnz} nnz/row) times {inner}x{ncols} ({b_nnz} nnz/row) \
         -> {} output nonzeros\n",
        expect.nnz()
    );
    let mut base_cycles = 0;
    for variant in [Variant::Base, Variant::Issr] {
        let run = run_spgemm(variant, &a, &b).expect("kernel finishes");
        assert_eq!(run.c.ptr(), expect.ptr(), "row pointers must match the oracle");
        assert_eq!(run.c.idcs(), expect.idcs(), "column indices must match the oracle");
        for (got, want) in run.c.vals().iter().zip(expect.vals()) {
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0));
        }
        let cycles = run.summary.metrics.roi.cycles;
        if variant == Variant::Base {
            base_cycles = cycles;
            println!("{variant:>5}: {cycles:6} cycles (software merge accumulation)");
        } else {
            let spacc = run.summary.spacc_stats;
            println!(
                "{variant:>5}: {cycles:6} cycles ({:.1}x; SpAcc merged {} pairs in {} feeds, \
                 {} duplicate hits, {} row drains)",
                base_cycles as f64 / cycles as f64,
                spacc.pairs_in,
                spacc.feeds,
                spacc.merges,
                spacc.drains,
            );
        }
    }

    // The cluster version with the fully DEVICE-OWNED two-pass
    // allocation: each worker counts its rows with count-only SpAcc
    // feeds (symbolic phase), the log-tree prefix-sum barrier turns the
    // counts into packed offsets on-device, and the numeric phase
    // drains rows into the exact slots — no host row pointer at all.
    let cluster = run_cluster_spgemm(Variant::Issr, &a, &b).expect("cluster finishes");
    assert!(cluster.summary.traps.is_empty());
    assert_eq!(cluster.c.ptr(), expect.ptr(), "device-computed row pointer matches the oracle");
    assert_eq!(cluster.c.idcs(), expect.idcs());
    let active = cluster.summary.spacc_stats.iter().filter(|s| s.drains > 0).count();
    let sym_feeds: u64 = cluster.summary.spacc_stats.iter().map(|s| s.count_feeds).sum();
    let overlap: u64 = cluster.summary.spacc_stats.iter().map(|s| s.overlap_cycles).sum();
    assert!(sym_feeds > 0, "the symbolic phase must run on-device");
    println!(
        "\ncluster (device-owned alloc): {} cycles across 8 workers \
         ({active} SpAcc units active, {sym_feeds} count-only symbolic feeds, \
         {overlap} drain/feed overlap cycles)",
        cluster.summary.cycles
    );
    println!("\nall outputs agree with the host reference::spgemm oracle");
}
