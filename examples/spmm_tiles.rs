//! CsrMM (§III-B): multiply a CSR matrix with a power-of-two-strided
//! dense matrix, exercising the ISSR's programmable index shift.
//!
//! ```sh
//! cargo run --release --example spmm_tiles
//! ```

use issr::kernels::csrmm::run_csrmm;
use issr::kernels::variant::Variant;
use issr::sparse::dense::DenseMatrix;
use issr::sparse::{gen, reference};

fn main() {
    let mut rng = gen::rng(5);
    let m = gen::csr_uniform::<u16>(&mut rng, 64, 200, 2048);
    // 200 rows pad to a 256-element power-of-two stride for the shifter.
    let mut b = DenseMatrix::with_pow2_stride(200, 6);
    for r in 0..200 {
        for c in 0..6 {
            b.set(r, c, gen::dense_vector(&mut rng, 1)[0]);
        }
    }
    println!(
        "CsrMM: {}x{} sparse ({} nnz) times {}x{} dense (stride {})\n",
        m.nrows(),
        m.ncols(),
        m.nnz(),
        b.rows(),
        b.cols(),
        b.stride(),
    );
    let expect = reference::csrmm(&m, &b);
    for variant in Variant::ALL {
        let run = run_csrmm(variant, &m, &b).expect("kernel finishes");
        assert!(run.y.max_abs_diff(&expect) < 1e-9);
        println!(
            "{variant:>5}: {:7} cycles, FPU utilization {:.3}",
            run.summary.metrics.roi.cycles,
            run.summary.metrics.fpu_utilization(),
        );
    }
    println!("\nall variants match the host reference");
}
