//! Quickstart: run the paper's SpVV kernel in all three variants on a
//! random sparse-dense workload and print what the ISSR buys you.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use issr::kernels::spvv::run_spvv;
use issr::kernels::variant::Variant;
use issr::sparse::{gen, reference};

fn main() {
    // Every shipped kernel is statically verified before anything
    // ticks — the same gate `cargo run -p issr-lint --bin lint` runs.
    issr::lint::assert_shipped_clean();
    println!("issr-lint: all shipped kernels verified\n");

    let dim = 2048;
    let nnz = 512;
    let mut rng = gen::rng(1);
    let a = gen::sparse_vector::<u16>(&mut rng, dim, nnz);
    let b = gen::dense_vector(&mut rng, dim);
    let expect = reference::spvv(&a, &b);

    println!("SpVV: {nnz} nonzeros against a {dim}-element dense vector\n");
    for variant in Variant::ALL {
        let run = run_spvv(variant, &a, &b).expect("kernel finishes");
        assert!((run.result - expect).abs() < 1e-9 * expect.abs().max(1.0));
        let m = run.summary.metrics;
        println!(
            "{variant:>5}: {:6} cycles, FPU utilization {:.3} (with reductions {:.3})",
            m.roi.cycles,
            m.fpu_utilization(),
            m.fpu_utilization_with_reduction(),
        );
    }
    println!("\nresult = {expect:.6} (all variants agree with the host reference)");
}
