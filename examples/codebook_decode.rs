//! Codebook decoding (§III-C): stream a codebook-compressed vector
//! through the ISSR, and run the two-ISSR codebook-compressed SpVV.
//!
//! ```sh
//! cargo run --release --example codebook_decode
//! ```

use issr::kernels::streaming::{run_codebook_spvv, run_gather};
use issr::sparse::{gen, reference};

fn main() {
    let mut rng = gen::rng(3);
    let n = 4096;
    let (codebook, codes) = gen::codebook_vector::<u16>(&mut rng, n, 32);

    // Decoding is a gather with the codebook as the dense operand.
    let run = run_gather(&codebook, &codes).expect("decode finishes");
    assert_eq!(run.out, reference::codebook_decode(&codebook, &codes));
    println!(
        "decoded {n} codebook entries in {} cycles ({:.2} elements/cycle; memory footprint {}x smaller)",
        run.summary.metrics.roi.cycles,
        n as f64 / run.summary.metrics.roi.cycles as f64,
        8 / 2,
    );

    // Sparse-dense product with codebook-compressed values: a streamer
    // with two ISSRs runs the same single-fmadd loop as Listing 1.
    let fiber = gen::sparse_vector::<u16>(&mut rng, 8192, n);
    let dense = gen::dense_vector(&mut rng, 8192);
    let (dot, summary) =
        run_codebook_spvv(&codebook, &codes, fiber.idcs(), &dense).expect("spvv finishes");
    let expect = reference::codebook_spvv(&codebook, &codes, fiber.idcs(), &dense);
    assert!((dot - expect).abs() < 1e-9 * expect.abs().max(1.0));
    println!(
        "codebook SpVV: {n} nonzeros in {} cycles, FPU utilization {:.3} (plain ISSR SpVV peaks at 0.80)",
        summary.metrics.roi.cycles,
        summary.metrics.fpu_utilization(),
    );
}
