//! Sparse-sparse streaming end to end: the index joiner matches two
//! sparse index streams in hardware (SSSR-style, arXiv:2305.05559), so
//! SpVV∩ and SpMSpV collapse to single-`fmadd` FREP loops — against the
//! ~10-instruction software two-pointer merge of the BASE variant.
//!
//! ```sh
//! cargo run --release --example spmspv
//! ```

use issr::kernels::spmspv::{run_spmspv, run_spvv_ss};
use issr::kernels::variant::Variant;
use issr::sparse::{gen, reference};

fn main() {
    // SpVV∩: two sparse vectors with 50% index overlap.
    let dim = 8192;
    let nnz = 512;
    let mut rng = gen::rng(2);
    let (a, b) = gen::overlapping_pair::<u16>(&mut rng, dim, nnz, nnz, 0.5);
    let expect = reference::spvv_ss(&a, &b);

    println!("SpVV∩: {nnz} ∩ {nnz} nonzeros (50% overlap) in dimension {dim}\n");
    for variant in [Variant::Base, Variant::Issr] {
        let run = run_spvv_ss(variant, &a, &b).expect("kernel finishes");
        assert!((run.result - expect).abs() < 1e-9 * expect.abs().max(1.0));
        let joiner = run.summary.joiner_stats;
        println!(
            "{variant:>5}: {:6} cycles ({} matches via {})",
            run.summary.metrics.roi.cycles,
            if joiner.jobs > 0 { joiner.matches } else { nnz as u64 / 2 },
            if joiner.jobs > 0 { "hardware joiner" } else { "software merge" },
        );
    }

    // SpMSpV: a CSR matrix against a sparse operand vector.
    let (nrows, ncols, row_nnz, x_nnz) = (48, 2048, 64, 256);
    let m = gen::csr_fixed_row_nnz::<u16>(&mut rng, nrows, ncols, row_nnz);
    let x = gen::sparse_vector::<u16>(&mut rng, ncols, x_nnz);
    let expect = reference::spmspv(&m, &x);

    println!("\nSpMSpV: {nrows}x{ncols} CSR ({row_nnz} nnz/row) times a {x_nnz}-nnz vector\n");
    let mut base_cycles = 0;
    for variant in [Variant::Base, Variant::Issr] {
        let run = run_spmspv(variant, &m, &x).expect("kernel finishes");
        assert!(issr::sparse::dense::allclose(&run.y, &expect, 1e-9, 1e-9));
        let cycles = run.summary.metrics.roi.cycles;
        if variant == Variant::Base {
            base_cycles = cycles;
            println!("{variant:>5}: {cycles:6} cycles");
        } else {
            println!(
                "{variant:>5}: {cycles:6} cycles ({:.1}x over the software merge, \
                 one joiner job per row: {})",
                base_cycles as f64 / cycles as f64,
                run.summary.joiner_stats.jobs,
            );
        }
    }
    println!("\nboth kernels agree with the host references");
}
